"""Stdlib-only HTTP front end for the job service.

A hand-rolled HTTP/1.1 server on ``asyncio.start_server`` -- no
third-party web framework -- exposing the evaluation service:

- ``POST   /v1/jobs``            submit ``{"spec": {...}, "client": ..,
  "priority": ..}``; 201 on enqueue, 200 when answered from the run
  cache, 429 + ``Retry-After`` under backpressure / per-tenant quota /
  rate limit (structured ``error`` codes ``queue_full`` /
  ``quota_exceeded`` / ``rate_limited``), 503 while draining
- ``GET    /v1/jobs``            list jobs (most recent last)
- ``GET    /v1/jobs/{id}``       one job's record
- ``GET    /v1/jobs/{id}/result``  the completed run, JSON-rendered
  from the run cache under the job's content-addressed key
- ``GET    /v1/jobs/{id}/events``  long-poll (``?since=N&timeout=S``)
  over the job's state changes and
  :class:`~repro.runner.monitor.SweepMonitor` progress snapshots
- ``DELETE /v1/jobs/{id}``       cancel a waiting job
- ``POST   /v1/workers``         a fleet worker joins (url, capacity,
  lease); ``POST /v1/workers/{id}/heartbeat`` renews the lease,
  ``DELETE /v1/workers/{id}`` leaves gracefully, ``GET /v1/workers``
  lists members + in-flight assignments
- ``GET    /healthz``            liveness + drain status, uptime,
  queue depth, and alive-worker count (the ``repro top`` poll target)
- ``GET    /metrics``            the process-wide metrics registry
  (:data:`~repro.obs.counters.FAULT_COUNTERS`): counters with
  ``service.*``, ``graph_store.*``, and ``fleet.*`` families broken
  out, typed gauges and histogram snapshots, scheduler
  queue/fairness state, and the worker roster.  ``?format=prom`` (or
  ``Accept: text/plain``) switches to the Prometheus text exposition
  rendered by :mod:`repro.obs.prom`.

Requests carrying an ``X-Repro-Trace-Id`` traceparent header join
that distributed trace: the context is activated around routing, and
a submitted spec without its own ``trace`` field inherits it, so
worker-side spans stitch under the coordinator's dispatch span.

:class:`ReproService` composes store + scheduler + HTTP listener and
owns the lifecycle: SIGTERM/SIGINT trigger a drain (running jobs
finish, queued jobs persist for the next boot) before the loop exits.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import signal
import time
from typing import Any, Dict, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro import __version__
from repro.core.metrics import RunResult
from repro.errors import (
    JobSpecError,
    JobStateError,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    ReproError,
    ServiceUnavailableError,
    SessionStateError,
    StreamError,
    ThrottledError,
    UnknownJobError,
    UnknownSessionError,
    UnknownWorkerError,
)
from repro.obs import prom
from repro.obs.counters import FAULT_COUNTERS
from repro.obs.trace_context import activate, current, extract_headers
from repro.obs.tracing import trace_event
from repro.runner.cache import RunCache
from repro.runner.sweep import SweepRunner
from repro.service.scheduler import JobScheduler
from repro.service.store import DONE, JobSpec, JobStore

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars / mappings into JSON-native values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except Exception:
            return value
    return value


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """JSON-render one :class:`RunResult` (the result-endpoint payload).

    The raw per-vertex ``result`` array is omitted -- it can be
    millions of entries; clients that need values recompute locally or
    read the shared cache.  ``result_sha256`` fingerprints the array so
    two jobs' answers can be compared for exact equality (the streaming
    smoke checks incremental == cold this way) without shipping it.
    Everything metric-shaped is included, timeline included when the
    run was instrumented.
    """
    import hashlib

    try:
        result_sha256 = hashlib.sha256(
            result.result.tobytes()
        ).hexdigest()
    except Exception:
        result_sha256 = None
    return _jsonable(
        {
            "result_sha256": result_sha256,
            "workload": result.workload,
            "system": result.system,
            "num_vertices": result.num_vertices,
            "num_edges": result.num_edges,
            "elapsed_seconds": result.elapsed_seconds,
            "quanta": result.quanta,
            "edges_traversed": result.edges_traversed,
            "messages_sent": result.messages_sent,
            "messages_processed": result.messages_processed,
            "useful_messages": result.useful_messages,
            "redundant_messages": result.redundant_messages,
            "coalesced_messages": result.coalesced_messages,
            "activations": result.activations,
            "breakdown": dict(result.breakdown),
            "traffic": dict(result.traffic),
            "utilization": dict(result.utilization),
            "gteps": result.gteps,
            "work_efficiency": result.work_efficiency,
            "coalescing_rate": result.coalescing_rate,
            "summary": result.describe(),
            "timeline": result.timeline,
        }
    )


class ServiceHTTP:
    """Route parsed requests into the scheduler/store/cache."""

    def __init__(
        self,
        scheduler: JobScheduler,
        store: JobStore,
        cache: Optional[RunCache],
        registry=None,
        sessions=None,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.cache = cache
        self.registry = registry
        #: Optional :class:`~repro.stream.session.SessionManager`
        #: backing the ``/v1/sessions`` routes.
        self.sessions = sessions
        #: Monotonic birth stamp backing ``/healthz``'s
        #: ``uptime_seconds``; :meth:`ReproService.start` re-stamps it
        #: when the listener actually binds.
        self.started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, headers = await self._dispatch_safe(reader)
            await self._respond(writer, status, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch_safe(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Union[Dict[str, Any], str], Dict[str, str]]:
        try:
            method, path, query, body, req_headers = (
                await self._read_request(reader)
            )
        except _HttpError as exc:
            return exc.status, {"error": exc.code, "message": str(exc)}, {}
        try:
            # Join the caller's distributed trace (if any) for the span
            # of this request: routing, submission, and any trace_event
            # fired inline all stamp its ids.
            with activate(extract_headers(req_headers)):
                status, payload = await self._route(
                    method, path, query, body, req_headers
                )
            return status, payload, {}
        except _HttpError as exc:
            return exc.status, {"error": exc.code, "message": str(exc)}, {}
        except ThrottledError as exc:
            FAULT_COUNTERS.increment("service.http.429")
            payload = {
                "message": str(exc),
                "retry_after_seconds": exc.retry_after_seconds,
            }
            if isinstance(exc, QueueFullError):
                payload.update(
                    error="queue_full", depth=exc.depth, limit=exc.limit
                )
            elif isinstance(exc, QuotaExceededError):
                payload.update(
                    error="quota_exceeded",
                    tenant=exc.tenant,
                    active=exc.active,
                    limit=exc.limit,
                )
            elif isinstance(exc, RateLimitedError):
                payload.update(
                    error="rate_limited", tenant=exc.tenant, rate=exc.rate
                )
            else:
                payload["error"] = "throttled"
            headers = {"Retry-After": f"{exc.retry_after_seconds:.0f}"}
            return 429, payload, headers
        except UnknownWorkerError as exc:
            return 404, {"error": "unknown_worker", "message": str(exc),
                         "worker_id": exc.worker_id}, {}
        except UnknownJobError as exc:
            return 404, {"error": "unknown_job", "message": str(exc),
                         "job_id": exc.job_id}, {}
        except UnknownSessionError as exc:
            return 404, {"error": "unknown_session", "message": str(exc),
                         "session_id": exc.session_id}, {}
        except JobStateError as exc:
            return 409, {"error": "job_state", "message": str(exc),
                         "state": exc.state}, {}
        except SessionStateError as exc:
            return 409, {"error": "session_state", "message": str(exc),
                         "state": exc.state}, {}
        except StreamError as exc:
            return 400, {"error": "bad_delta", "message": str(exc)}, {}
        except ServiceUnavailableError as exc:
            return 503, {"error": "draining", "message": str(exc)}, {}
        except JobSpecError as exc:
            return 400, {"error": "bad_spec", "message": str(exc)}, {}
        except ReproError as exc:
            return 400, {"error": "bad_request", "message": str(exc)}, {}
        except Exception as exc:  # noqa: BLE001 -- last-resort 500
            FAULT_COUNTERS.increment("service.http.500")
            return 500, {"error": "internal",
                         "message": f"{type(exc).__name__}: {exc}"}, {}

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, list], Optional[Dict[str, Any]],
               Dict[str, str]]:
        request_line = await reader.readline()
        if not request_line:
            raise _HttpError(400, "empty_request", "empty request")
        try:
            method, target, _ = request_line.decode("latin-1").split(" ", 2)
        except ValueError:
            raise _HttpError(400, "bad_request_line", "malformed request line")
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise _HttpError(413, "body_too_large",
                             f"request body exceeds {MAX_BODY_BYTES} bytes")
        body: Optional[Dict[str, Any]] = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, "bad_json", f"body is not JSON: {exc}")
        parts = urlsplit(target)
        return (
            method.upper(), parts.path, parse_qs(parts.query), body, headers
        )

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Union[Dict[str, Any], str],
        extra_headers: Dict[str, str],
    ) -> None:
        if isinstance(payload, str):
            # Pre-rendered text body (the Prometheus exposition).
            body = payload.encode("utf-8")
            content_type = prom.CONTENT_TYPE
        else:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "close",
            "Server": f"repro-service/{__version__}",
        }
        headers.update(extra_headers)
        head = f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        head += "".join(f"{k}: {v}\r\n" for k, v in headers.items())
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        query: Dict[str, list],
        body: Optional[Dict[str, Any]],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        if path == "/healthz" and method == "GET":
            return self._healthz()
        if path == "/metrics" and method == "GET":
            return self._metrics(query, headers or {})
        if path == "/v1/jobs":
            if method == "POST":
                return await self._submit(body)
            if method == "GET":
                return self._list_jobs()
            raise _HttpError(405, "method", f"{method} not allowed here")
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            job_id, _, tail = rest.partition("/")
            if not job_id:
                raise _HttpError(404, "not_found", f"no route {path!r}")
            if not tail:
                if method == "GET":
                    return self._get_job(job_id)
                if method == "DELETE":
                    return await self._cancel(job_id)
                raise _HttpError(405, "method", f"{method} not allowed here")
            if tail == "result" and method == "GET":
                return self._result(job_id)
            if tail == "events" and method == "GET":
                return await self._events(job_id, query)
        if path == "/v1/sessions":
            if method == "POST":
                return await self._create_session(body)
            if method == "GET":
                return self._list_sessions()
            raise _HttpError(405, "method", f"{method} not allowed here")
        if path.startswith("/v1/sessions/"):
            rest = path[len("/v1/sessions/"):]
            session_id, _, tail = rest.partition("/")
            if not session_id:
                raise _HttpError(404, "not_found", f"no route {path!r}")
            if not tail:
                if method == "GET":
                    return self._get_session(session_id)
                if method == "DELETE":
                    return await self._close_session(session_id)
                raise _HttpError(405, "method", f"{method} not allowed here")
            if tail == "deltas" and method == "POST":
                return await self._apply_delta(session_id, body)
            if tail == "compact" and method == "POST":
                return await self._compact_session(session_id)
            if tail == "jobs" and method == "POST":
                return await self._submit_session_job(session_id, body)
        if path == "/v1/workers":
            if method == "POST":
                return self._register_worker(body)
            if method == "GET":
                return self._list_workers()
            raise _HttpError(405, "method", f"{method} not allowed here")
        if path.startswith("/v1/workers/"):
            rest = path[len("/v1/workers/"):]
            worker_id, _, tail = rest.partition("/")
            if worker_id:
                if tail == "heartbeat" and method == "POST":
                    return self._heartbeat_worker(worker_id)
                if not tail and method == "DELETE":
                    return self._deregister_worker(worker_id)
        raise _HttpError(404, "not_found", f"no route {method} {path!r}")

    # -- endpoints ------------------------------------------------------

    def _healthz(self) -> Tuple[int, Dict[str, Any]]:
        snap = self.scheduler.snapshot()
        status = "draining" if snap["draining"] else "ok"
        workers_alive = (
            len(self.registry.alive()) if self.registry is not None else 0
        )
        return 200, {
            "status": status,
            "version": __version__,
            "uptime_seconds": round(
                max(0.0, time.monotonic() - self.started_monotonic), 3
            ),
            "workers_alive": workers_alive,
            **snap,
        }

    def _metrics(
        self, query: Dict[str, list], headers: Dict[str, str]
    ) -> Tuple[int, Union[Dict[str, Any], str]]:
        # Scrape-time gauge refresh: queue/running gauges are published
        # on mutation, but an idle scheduler should still scrape fresh.
        self.scheduler._publish_gauges()
        counters = FAULT_COUNTERS.snapshot()
        gauges = FAULT_COUNTERS.gauges()
        histograms = FAULT_COUNTERS.histograms()

        fmt = (query.get("format") or [""])[-1].lower()
        accept = headers.get("accept", "")
        if fmt == "prom" or (
            not fmt and accept.startswith("text/plain")
        ):
            return 200, prom.render_prometheus(counters, gauges, histograms)

        def family(prefix: str) -> Dict[str, int]:
            return {
                name: value
                for name, value in counters.items()
                if name.startswith(prefix)
            }

        payload = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "service": family("service."),
            "graph_store": family("graph_store."),
            "fleet": family("fleet."),
            "stream": family("stream."),
            "scheduler": self.scheduler.snapshot(),
        }
        if self.registry is not None:
            payload["workers"] = [
                worker.to_dict() for worker in self.registry.workers()
            ]
        return 200, payload

    async def _submit(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(body, dict):
            raise JobSpecError("POST /v1/jobs needs a JSON object body")
        spec = JobSpec.from_dict(body.get("spec", {}))
        if spec.trace is None:
            # The spec's own trace field wins; otherwise inherit the
            # request header's context (activated by _dispatch_safe) so
            # scheduler/worker spans stitch under the caller's span.
            ctx = current()
            if ctx is not None:
                spec = dataclasses.replace(spec, trace=ctx.traceparent())
        client = str(body.get("client", "anonymous"))
        try:
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError):
            raise JobSpecError("priority must be an integer") from None
        job = await self.scheduler.submit(spec, client=client,
                                          priority=priority)
        status = 200 if job.cached else 201
        return status, {"job": job.to_dict()}

    def _list_jobs(self) -> Tuple[int, Dict[str, Any]]:
        return 200, {"jobs": [job.to_dict() for job in self.store.jobs()]}

    def _get_job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        return 200, {"job": self.store.get(job_id).to_dict()}

    async def _cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = await self.scheduler.cancel(job_id)
        return 200, {"job": job.to_dict()}

    def _result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self.store.get(job_id)
        if job.state != DONE:
            raise JobStateError(
                f"job {job_id} has no result (state: {job.state})",
                state=job.state,
            )
        if self.cache is None or job.key is None:
            raise JobStateError(
                f"job {job_id} completed but the service runs cacheless",
                state=job.state,
            )
        result = self.cache.load(job.key)
        if result is None:
            # Evicted between completion and fetch: the contract is
            # content-addressed storage, so report the gap honestly.
            raise UnknownJobError(job_id)
        return 200, {
            "job": job.to_dict(),
            "result": run_result_to_dict(result),
        }

    # -- streaming sessions --------------------------------------------

    def _need_sessions(self):
        if self.sessions is None:
            raise _HttpError(
                404, "no_sessions",
                "this service has no streaming session manager",
            )
        return self.sessions

    async def _create_session(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        sessions = self._need_sessions()
        if not isinstance(body, dict) or "graph" not in body:
            raise JobSpecError(
                "POST /v1/sessions needs a JSON body with 'graph'"
            )
        graph = str(body["graph"])
        try:
            seed = int(body.get("seed", 42))
        except (TypeError, ValueError):
            raise JobSpecError("seed must be an integer") from None
        client = str(body.get("client", "anonymous"))
        loop = asyncio.get_running_loop()
        ctx = current()

        def build():
            # Executor thread: re-join the request's trace explicitly.
            with activate(ctx):
                return sessions.create(graph, seed=seed, client=client)

        session = await loop.run_in_executor(None, build)
        return 201, {"session": session.to_dict()}

    def _list_sessions(self) -> Tuple[int, Dict[str, Any]]:
        sessions = self._need_sessions()
        return 200, {
            "sessions": [s.to_dict() for s in sessions.store.sessions()]
        }

    def _get_session(self, session_id: str) -> Tuple[int, Dict[str, Any]]:
        sessions = self._need_sessions()
        return 200, {"session": sessions.store.get(session_id).to_dict()}

    async def _close_session(
        self, session_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        sessions = self._need_sessions()
        session = sessions.close(session_id)
        return 200, {"session": session.to_dict()}

    async def _apply_delta(
        self, session_id: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.stream.delta import EdgeDeltaBatch

        sessions = self._need_sessions()
        if not isinstance(body, dict):
            raise JobSpecError(
                "POST /v1/sessions/<id>/deltas needs a JSON object body"
            )
        batch = EdgeDeltaBatch.from_dict(
            body["batch"] if "batch" in body else body
        )
        loop = asyncio.get_running_loop()
        ctx = current()

        def apply():
            with activate(ctx):
                return sessions.apply(session_id, batch)

        session = await loop.run_in_executor(None, apply)
        return 200, {"session": session.to_dict()}

    async def _compact_session(
        self, session_id: str
    ) -> Tuple[int, Dict[str, Any]]:
        sessions = self._need_sessions()
        loop = asyncio.get_running_loop()
        ctx = current()

        def compact():
            with activate(ctx):
                return sessions.compact(session_id)

        session = await loop.run_in_executor(None, compact)
        return 200, {"session": session.to_dict()}

    async def _submit_session_job(
        self, session_id: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        """Admit one query pinned to the session's *current* version.

        The server (not the client) stamps the version digest and
        resolves the default BFS source from the resident base graph,
        so a resubmission at an unchanged version digests to the same
        cache key and resolves as a pure cache hit.
        """
        sessions = self._need_sessions()
        if not isinstance(body, dict):
            raise JobSpecError(
                "POST /v1/sessions/<id>/jobs needs a JSON object body"
            )
        workload = str(body.get("workload", "pr"))
        mode = str(body.get("mode", "incremental"))
        raw_source = body.get("source")
        try:
            source = None if raw_source is None else int(raw_source)
        except (TypeError, ValueError):
            raise JobSpecError("source must be an integer") from None
        loop = asyncio.get_running_loop()
        ctx = current()

        def prepare():
            with activate(ctx):
                record = sessions.store.get(session_id)
                overlay = sessions.overlay(session_id)
                resolved = sessions.resolve_job_source(
                    session_id, workload, source
                )
                return record, overlay.version_digest, resolved

        record, digest, resolved = await loop.run_in_executor(None, prepare)
        spec = JobSpec(
            workload=workload,
            graph=record.graph,
            seed=record.seed,
            source=resolved,
            session=session_id,
            graph_digest=digest,
            mode=mode,
        )
        if spec.trace is None:
            if ctx is not None:
                spec = dataclasses.replace(spec, trace=ctx.traceparent())
        client = str(body.get("client", "anonymous"))
        try:
            priority = int(body.get("priority", 0))
        except (TypeError, ValueError):
            raise JobSpecError("priority must be an integer") from None
        job = await self.scheduler.submit(
            spec, client=client, priority=priority
        )
        status = 200 if job.cached else 201
        return status, {"job": job.to_dict()}

    # -- fleet membership ----------------------------------------------

    def _need_registry(self):
        if self.registry is None:
            raise _HttpError(
                404, "no_fleet", "this service has no worker registry"
            )
        return self.registry

    def _register_worker(
        self, body: Optional[Dict[str, Any]]
    ) -> Tuple[int, Dict[str, Any]]:
        registry = self._need_registry()
        if not isinstance(body, dict) or "url" not in body:
            raise JobSpecError(
                "POST /v1/workers needs a JSON body with 'url'"
            )
        lease = body.get("lease_seconds")
        worker = registry.register(
            str(body["url"]),
            worker_id=body.get("worker_id") or body.get("id"),
            capacity=int(body.get("capacity", 1)),
            lease_seconds=float(lease) if lease is not None else None,
            meta=body.get("meta") or {},
        )
        return 201, {"worker": worker.to_dict()}

    def _list_workers(self) -> Tuple[int, Dict[str, Any]]:
        registry = self._need_registry()
        assignments: Dict[str, str] = {}
        fleet = getattr(self.scheduler, "fleet", None)
        if fleet is not None:
            assignments = fleet.assignments()
        workers = []
        for worker in registry.workers():
            record = worker.to_dict()
            record["jobs_inflight"] = [
                job_id
                for job_id, wid in assignments.items()
                if wid == worker.id
            ]
            workers.append(record)
        return 200, {"workers": workers, "ring": registry.ring.nodes()}

    def _heartbeat_worker(self, worker_id: str) -> Tuple[int, Dict[str, Any]]:
        worker = self._need_registry().heartbeat(worker_id)
        return 200, {"worker": worker.to_dict()}

    def _deregister_worker(self, worker_id: str) -> Tuple[int, Dict[str, Any]]:
        worker = self._need_registry().deregister(worker_id)
        return 200, {"worker": worker.to_dict()}

    async def _events(
        self, job_id: str, query: Dict[str, list]
    ) -> Tuple[int, Dict[str, Any]]:
        def _one(name: str, default: float) -> float:
            values = query.get(name)
            if not values:
                return default
            try:
                return float(values[-1])
            except ValueError:
                raise _HttpError(400, "bad_query",
                                 f"{name} must be a number") from None

        since = int(_one("since", 0))
        timeout = min(120.0, max(0.0, _one("timeout", 30.0)))
        events, nxt = await self.scheduler.events_since(
            job_id, since=since, timeout=timeout
        )
        job = self.store.get(job_id)
        return 200, {
            "events": _jsonable(events),
            "next": nxt,
            "state": job.state,
        }


class _HttpError(Exception):
    """Protocol-level rejection with a concrete status code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        self.status = status
        self.code = code
        super().__init__(message)


# ----------------------------------------------------------------------
# Composed server
# ----------------------------------------------------------------------


class ReproService:
    """Store + scheduler + HTTP listener with a drain-on-signal lifecycle.

    ``serve_forever`` runs until :meth:`shutdown` is called (SIGTERM and
    SIGINT are wired to it): the listener closes, the scheduler drains
    (running jobs finish within ``drain_timeout``; queued jobs stay
    persisted), and the store compacts, so a restarted server resumes
    exactly the queued work.

    Every service is fleet-capable: it owns a
    :class:`~repro.service.registry.WorkerRegistry` and a
    :class:`~repro.service.fleet.FleetDispatcher`, so ``repro worker``
    processes can join at any time.  With zero registered workers jobs
    simply execute on the local runner, exactly as before.
    """

    def __init__(
        self,
        service_dir: str,
        cache_dir: Optional[str] = None,
        runner: Optional[SweepRunner] = None,
        max_queue_depth: int = 64,
        job_workers: int = 2,
        drain_timeout: Optional[float] = 30.0,
        lease_seconds: float = 10.0,
        max_requeues: int = 3,
        ring_replicas: int = 64,
        quota_max_active: Optional[int] = None,
        quota_rate: Optional[float] = None,
        quota_burst: Optional[float] = None,
        reap_interval: Optional[float] = None,
        batch_limit: int = 1,
    ) -> None:
        from repro.service.fleet import FleetDispatcher, TenantQuotas
        from repro.service.registry import WorkerRegistry
        from repro.stream.session import SessionManager, SessionStore

        self.store = JobStore(service_dir)
        self.session_store = SessionStore(service_dir)
        self.sessions = SessionManager(self.session_store)
        self.runner = (
            runner
            if runner is not None
            else SweepRunner(workers=1, cache_dir=cache_dir)
        )
        self.registry = WorkerRegistry(
            lease_seconds=lease_seconds, replicas=ring_replicas
        )
        self.fleet = FleetDispatcher(
            self.registry,
            cache=self.runner.cache,
            max_requeues=max_requeues,
        )
        quotas = None
        if quota_max_active is not None or quota_rate is not None:
            quotas = TenantQuotas(
                max_active=quota_max_active,
                rate=quota_rate,
                burst=quota_burst,
            )
        self.scheduler = JobScheduler(
            self.store,
            runner=self.runner,
            max_queue_depth=max_queue_depth,
            job_workers=job_workers,
            fleet=self.fleet,
            quotas=quotas,
            reap_interval=reap_interval,
            batch_limit=batch_limit,
            sessions=self.sessions,
        )
        self.http = ServiceHTTP(
            self.scheduler, self.store, self.runner.cache,
            registry=self.registry,
            sessions=self.sessions,
        )
        self.drain_timeout = drain_timeout
        self._stop: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind the listener, recover persisted jobs, start workers.

        Returns the bound port (useful with ``port=0``).
        """
        self._stop = asyncio.Event()
        resumed = await self.scheduler.start()
        self._server = await asyncio.start_server(
            self.http.handle, host=host, port=port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.http.started_monotonic = time.monotonic()
        trace_event("service.start", host=host, port=self.port,
                    resumed=resumed)
        return self.port

    def shutdown(self) -> None:
        """Request a graceful drain-and-exit (signal-handler safe)."""
        if self._stop is not None:
            self._stop.set()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-unix or nested loop: rely on KeyboardInterrupt

    async def serve_forever(
        self, host: str = "127.0.0.1", port: int = 0, on_ready=None
    ) -> Dict[str, int]:
        """Run until a shutdown signal, then drain.  Returns the drain
        summary (queued jobs left persisted, whether running finished).
        ``on_ready(port)`` fires once the listener is bound.
        """
        bound = await self.start(host=host, port=port)
        self._install_signal_handlers()
        if on_ready is not None:
            on_ready(bound)
        assert self._stop is not None
        await self._stop.wait()
        return await self.stop()

    async def stop(self) -> Dict[str, int]:
        """Close the listener, drain the scheduler, compact the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        summary = await self.scheduler.drain(timeout=self.drain_timeout)
        self.store.compact()
        self.session_store.compact()
        trace_event("service.stop", **summary)
        return summary
