"""Durable job state: specs, the job state machine, and the JSONL store.

A *job* is one simulation the service has promised to run (or to answer
from the run cache).  Its specification (:class:`JobSpec`) is pure
JSON-native data that lowers onto the existing
:class:`~repro.runner.spec.RunSpec` / :class:`~repro.runner.spec.GraphSpec`
pair -- so a submitted job digests into exactly the same
content-addressed cache key a ``repro run`` or ``repro sweep`` of the
same inputs would, and identical submissions dedupe against the
:class:`~repro.runner.cache.RunCache` before any compute happens.

State machine (see DESIGN.md for the full contract)::

    submitted --> queued --> running --> done
         |           |          |    \\-> failed
         |           |          \\------> queued     (crash requeue)
         |           \\-----------------> cancelled
         |\\----------------------------> done       (cache hit)
         \\-----------------------------> cancelled

Durability is an append-only JSONL journal: every state change appends
the job's full record, so recovery is "replay, last record per id
wins" and a hard kill loses at most one torn trailing line.  The
journal compacts automatically once it accumulates enough superseded
records (rewrite-to-temp + ``os.replace``, crash-safe).  Results are
*not* journaled -- they live in the run cache under the job's spec key,
which the journal records.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import JobSpecError, JobStateError, UnknownJobError
from repro.runner.spec import (
    SOURCELESS_WORKLOADS,
    GraphSpec,
    RunSpec,
    resolve_source,
)

#: Journal format version (header record of every journal file).
SERVICE_SCHEMA = 1

# ----------------------------------------------------------------------
# Job states
# ----------------------------------------------------------------------

SUBMITTED = "submitted"
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (SUBMITTED, QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Legal transitions.  ``submitted -> done`` is the cache-hit shortcut;
#: ``submitted -> failed`` a spec that fails to lower at admission;
#: ``running -> queued`` is the crash-recovery requeue.
TRANSITIONS: Dict[str, tuple] = {
    SUBMITTED: (QUEUED, DONE, FAILED, CANCELLED),
    QUEUED: (RUNNING, CANCELLED),
    RUNNING: (DONE, FAILED, QUEUED, CANCELLED),
    DONE: (),
    FAILED: (),
    CANCELLED: (),
}


# ----------------------------------------------------------------------
# Job specification
# ----------------------------------------------------------------------

_KNOWN_WORKLOADS = ("bfs", "cc", "sssp", "pr", "bc")
_PLACEMENTS = ("interleave", "random", "load_balanced", "locality")


@dataclass(frozen=True)
class JobSpec:
    """JSON-native description of one simulation job.

    Mirrors the knobs of ``repro run`` / one sweep-grid cell.  ``gpns``
    and ``scale`` parameterize the NOVA config (``onchip`` the
    PolyGraph one); ``timeline`` requests an instrumented run whose
    result carries a per-quantum timeline.  ``source=None`` on a
    traversal workload resolves to the graph's highest-out-degree
    vertex at admission (the same default every CLI path uses), so the
    resolved spec -- and its cache key -- is deterministic.
    """

    workload: str
    graph: str
    seed: int = 42
    system: str = "nova"
    gpns: int = 1
    scale: float = 1.0 / 256.0
    source: Optional[int] = None
    placement: str = "random"
    placement_seed: int = 1
    max_quanta: int = 5_000_000
    onchip: Optional[str] = None
    workload_kwargs: Mapping[str, Any] = field(default_factory=dict)
    timeline: bool = False
    #: Traceparent string (``00-<trace>-<span>-01``) binding this job
    #: to a distributed trace.  Carried verbatim through the journal
    #: and the fleet dispatch hop; NOT part of the lowered RunSpec, so
    #: traced and untraced submissions share one cache key.
    trace: Optional[str] = None
    #: Resident graph session this job queries (see
    #: :mod:`repro.stream.session`).  Session jobs run against the
    #: service's resident overlay instead of building a graph, and
    #: ``graph_digest`` pins the session *version* the job was admitted
    #: at -- the scheduler refuses to run it at any other version, and
    #: the digest keys the run cache so versions never alias.
    session: Optional[str] = None
    graph_digest: Optional[str] = None
    #: Session query mode: ``incremental`` (delta-seeded update from
    #: the resident workload state) or ``cold`` (from-scratch on the
    #: materialized post-delta graph).  Part of the cache key via
    #: ``workload_kwargs``.
    mode: str = "incremental"

    def __post_init__(self) -> None:
        if self.session is not None:
            from repro.stream.session import STREAM_MODES, STREAM_WORKLOADS

            if self.workload not in STREAM_WORKLOADS:
                raise JobSpecError(
                    f"session jobs support workloads "
                    f"{', '.join(STREAM_WORKLOADS)}; got {self.workload!r}"
                )
            if self.mode not in STREAM_MODES:
                raise JobSpecError(
                    f"unknown session query mode {self.mode!r}; choose "
                    f"from {', '.join(STREAM_MODES)}"
                )
            if not self.graph_digest:
                raise JobSpecError(
                    "session jobs need a graph_digest (the session "
                    "version the job is pinned to)"
                )
        if self.workload not in _KNOWN_WORKLOADS:
            raise JobSpecError(
                f"unknown workload {self.workload!r}; choose from "
                f"{', '.join(_KNOWN_WORKLOADS)}"
            )
        if not isinstance(self.graph, str) or not self.graph:
            raise JobSpecError("graph must be a non-empty specifier string")
        if self.placement not in _PLACEMENTS:
            raise JobSpecError(
                f"unknown placement {self.placement!r}; choose from "
                f"{', '.join(_PLACEMENTS)}"
            )
        if self.gpns < 1:
            raise JobSpecError(f"gpns must be >= 1, got {self.gpns}")
        if self.scale <= 0:
            raise JobSpecError(f"scale must be positive, got {self.scale}")
        if self.max_quanta < 1:
            raise JobSpecError(
                f"max_quanta must be >= 1, got {self.max_quanta}"
            )
        if self.trace is not None and not isinstance(self.trace, str):
            raise JobSpecError("trace must be a traceparent string or null")

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["workload_kwargs"] = dict(self.workload_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        if not isinstance(data, Mapping):
            raise JobSpecError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise JobSpecError(
                f"unknown job-spec field(s): {', '.join(unknown)}"
            )
        if "workload" not in data or "graph" not in data:
            raise JobSpecError("job spec needs 'workload' and 'graph'")
        try:
            return cls(**dict(data))
        except TypeError as exc:
            raise JobSpecError(f"bad job spec: {exc}") from None

    # -- lowering -------------------------------------------------------

    def to_run_spec(self) -> RunSpec:
        """Lower to a :class:`RunSpec` with the source resolved.

        Builds the graph (memoized per process) when the default source
        must be resolved; system configs are constructed exactly the
        way the CLI constructs them, so keys line up with ``repro
        run`` / ``repro sweep``.

        Session jobs lower differently: the graph stays a bare recipe
        (never built -- the overlay is resident at the service), the
        spec carries the session's version digest for cache keying,
        ``system`` is ``"stream"``, and the query mode rides in
        ``workload_kwargs`` so incremental and cold answers key apart.
        """
        if self.session is not None:
            return RunSpec(
                self.workload,
                GraphSpec(self.graph, seed=self.seed),
                system="stream",
                source=self.source,
                max_quanta=self.max_quanta,
                workload_kwargs={
                    **dict(self.workload_kwargs),
                    "mode": self.mode,
                },
                graph_digest=self.graph_digest,
            )
        gspec = GraphSpec(
            self.graph,
            seed=self.seed,
            weighted=(self.workload == "sssp"),
            symmetrized=(self.workload == "cc"),
        )
        source = self.source
        if self.workload in SOURCELESS_WORKLOADS:
            source = None
        elif source is None:
            source = resolve_source(gspec.build(), self.workload)
        config = None
        if self.system == "nova":
            from repro.sim.config import scaled_config

            config = scaled_config(num_gpns=self.gpns, scale=self.scale)
        elif self.system == "polygraph":
            from repro.baselines.polygraph import PolyGraphConfig
            from repro.units import MiB

            if self.onchip is not None:
                from repro.cli import parse_size

                onchip = parse_size(self.onchip)
            else:
                onchip = int(32 * MiB * self.scale)
            config = PolyGraphConfig(onchip_bytes=onchip)
        elif self.system == "ligra":
            from repro.baselines.ligra import LigraConfig

            config = LigraConfig()
        obs = None
        if self.timeline:
            from repro.obs.config import ObsConfig

            obs = ObsConfig(timeline=True)
        return RunSpec(
            self.workload,
            gspec,
            config=config,
            system=self.system,
            source=source,
            placement=self.placement,
            placement_seed=self.placement_seed,
            max_quanta=self.max_quanta,
            workload_kwargs=dict(self.workload_kwargs),
            obs=obs,
        )


# ----------------------------------------------------------------------
# Job record
# ----------------------------------------------------------------------


def new_job_id() -> str:
    return "j-" + uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One job's durable record (everything the journal persists)."""

    id: str
    spec: JobSpec
    client: str = "anonymous"
    priority: int = 0
    state: str = SUBMITTED
    seq: int = 0
    created_at: float = 0.0
    updated_at: float = 0.0
    #: Content-addressed run-cache key of the lowered spec (filled at
    #: admission; the result endpoint reads the cache under this key).
    key: Optional[str] = None
    #: True when the job was answered from the cache with no compute.
    cached: bool = False
    attempts: int = 0
    #: Times the job was re-queued after losing its worker (fleet mode).
    requeues: int = 0
    #: Id of the fleet worker the job last dispatched to, if any.
    worker: Optional[str] = None
    error_kind: Optional[str] = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    def transition(self, new_state: str, now: Optional[float] = None) -> None:
        """Move to ``new_state``, enforcing the state machine."""
        if new_state not in JOB_STATES:
            raise JobStateError(f"unknown job state {new_state!r}")
        if new_state not in TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.id} cannot go {self.state} -> {new_state}",
                state=self.state,
            )
        self.state = new_state
        self.updated_at = time.time() if now is None else now

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["spec"] = self.spec.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        payload = dict(data)
        payload["spec"] = JobSpec.from_dict(payload.get("spec", {}))
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - names
        for name in unknown:  # forward compatibility: ignore new fields
            payload.pop(name)
        return cls(**payload)


# ----------------------------------------------------------------------
# Durable store
# ----------------------------------------------------------------------


class JobStore:
    """Append-only JSONL journal of job records with compaction.

    Every :meth:`put` appends the job's full record; the in-memory view
    is "last record per id wins".  The journal compacts itself (atomic
    rewrite) once superseded records outnumber
    ``compact_slack * live-records`` past a floor, so steady-state disk
    use is proportional to the number of jobs, not state changes.
    Thread-safe: the scheduler writes from executor threads.
    """

    def __init__(
        self,
        root: str,
        compact_min_records: int = 256,
        compact_slack: float = 4.0,
    ) -> None:
        self.root = root
        self.path = os.path.join(root, "jobs.jsonl")
        self.compact_min_records = compact_min_records
        self.compact_slack = compact_slack
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._seq = 0
        self._records_on_disk = 0
        self._load()

    # -- loading --------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, encoding="utf-8") as f:
                lines = f.readlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a hard kill
            self._records_on_disk += 1
            if record.get("op") != "job":
                continue  # header / future record kinds
            try:
                job = Job.from_dict(record["job"])
            except Exception:
                continue  # one bad record must not poison recovery
            self._jobs[job.id] = job
            self._seq = max(self._seq, job.seq)

    # -- mutation -------------------------------------------------------

    def create(
        self,
        spec: JobSpec,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Job:
        """Mint and persist a new job in the ``submitted`` state."""
        now = time.time()
        with self._lock:
            self._seq += 1
            job = Job(
                id=new_job_id(),
                spec=spec,
                client=client,
                priority=int(priority),
                state=SUBMITTED,
                seq=self._seq,
                created_at=now,
                updated_at=now,
            )
            self._jobs[job.id] = job
            self._append(job)
        return job

    def put(self, job: Job) -> None:
        """Persist ``job``'s current record (after any state change)."""
        with self._lock:
            self._jobs[job.id] = job
            self._append(job)

    def _append(self, job: Job) -> None:
        os.makedirs(self.root, exist_ok=True)
        fresh = not os.path.exists(self.path)
        record = {"op": "job", "job": job.to_dict()}
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as f:
            if fresh:
                header = json.dumps(
                    {"op": "header", "schema": SERVICE_SCHEMA},
                    sort_keys=True,
                    separators=(",", ":"),
                )
                f.write(header + "\n")
                self._records_on_disk += 1
            f.write(line + "\n")
        self._records_on_disk += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        live = len(self._jobs) + 1  # + header
        threshold = max(
            self.compact_min_records, int(live * self.compact_slack)
        )
        if self._records_on_disk <= threshold:
            return
        self._compact()

    def _compact(self) -> None:
        """Atomically rewrite the journal to one record per live job."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".jobs-", suffix=".jsonl"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                f.write(
                    json.dumps(
                        {"op": "header", "schema": SERVICE_SCHEMA},
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                for job in sorted(self._jobs.values(), key=lambda j: j.seq):
                    record = {"op": "job", "job": job.to_dict()}
                    f.write(
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._records_on_disk = len(self._jobs) + 1

    def compact(self) -> None:
        with self._lock:
            self._compact()

    # -- queries --------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def jobs(self) -> List[Job]:
        """All jobs, oldest first."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.seq)

    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            out[job.state] += 1
        return out

    # -- recovery -------------------------------------------------------

    def recover(self) -> List[Job]:
        """Requeue interrupted work; return jobs needing (re)scheduling.

        Jobs found ``running`` were interrupted by a crash or an unclean
        shutdown: they transition back to ``queued`` (their worker is
        gone; the run cache may still absorb any half-finished compute
        as a future hit).  Returns every ``queued`` job plus any
        ``submitted`` stragglers, oldest first, for the scheduler to
        re-enqueue.
        """
        resumable: List[Job] = []
        for job in self.jobs():
            if job.state == RUNNING:
                job.transition(QUEUED)
                self.put(job)
                resumable.append(job)
            elif job.state == QUEUED:
                resumable.append(job)
            elif job.state == SUBMITTED:
                # Crashed between admission and enqueue: treat as queued.
                job.transition(QUEUED)
                self.put(job)
                resumable.append(job)
        resumable.sort(key=lambda j: j.seq)
        return resumable
