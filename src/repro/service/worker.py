"""Worker side of the fleet: the join/heartbeat agent and local pools.

A *worker* is just a :class:`~repro.service.http.ReproService` speaking
the existing HTTP job contract -- the coordinator submits jobs to it
exactly the way a CLI client would.  What makes it a fleet member is
the :class:`WorkerAgent`: an asyncio task that registers the worker's
advertised URL with the coordinator (``POST /v1/workers``) and then
heartbeats at a third of the lease interval.  If the coordinator
restarts (losing its in-memory registry), the agent notices the 404 on
its next heartbeat and transparently re-registers.

:class:`LocalWorkerPool` scales a single host: ``repro serve
--workers N`` spawns N ``repro worker`` subprocesses that share the
coordinator's content-addressed run-cache directory (so any worker's
completed result is visible to the coordinator and to every sibling)
and terminates them when the coordinator drains.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ServiceError, UnknownWorkerError
from repro.obs.trace_context import inject_env
from repro.obs.tracing import trace_event


class WorkerAgent:
    """Keep one worker registered and leased with its coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        advertise_url: str,
        capacity: int = 1,
        lease_seconds: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
        client_factory: Optional[Callable[[str], Any]] = None,
    ) -> None:
        if client_factory is None:
            from repro.service.client import ServiceClient

            client_factory = ServiceClient
        self.coordinator_url = coordinator_url
        self.advertise_url = advertise_url
        self.capacity = capacity
        self.lease_seconds = lease_seconds
        self.meta = dict(meta or {})
        self.meta.setdefault("pid", os.getpid())
        self.worker_id: Optional[str] = None
        self._client = client_factory(coordinator_url)
        self._stopping = False

    # -- blocking halves (run in executor threads) ----------------------

    def _register(self) -> Dict[str, Any]:
        worker = self._client.register_worker(
            self.advertise_url,
            worker_id=self.worker_id,
            capacity=self.capacity,
            lease_seconds=self.lease_seconds,
            meta=self.meta,
        )
        self.worker_id = worker["id"]
        return worker

    def _heartbeat(self) -> Dict[str, Any]:
        return self._client.worker_heartbeat(self.worker_id)

    def _deregister(self) -> None:
        if self.worker_id is not None:
            self._client.deregister_worker(self.worker_id)

    # -- the asyncio loop ----------------------------------------------

    def interval(self) -> float:
        """Heartbeat period: a third of the lease, floor 50 ms."""
        lease = self.lease_seconds if self.lease_seconds else 10.0
        return max(0.05, lease / 3.0)

    async def run(self) -> None:
        """Register, then heartbeat until :meth:`stop` (or cancel)."""
        loop = asyncio.get_running_loop()
        while not self._stopping:
            try:
                if self.worker_id is None:
                    worker = await loop.run_in_executor(None, self._register)
                    trace_event(
                        "fleet.agent_registered",
                        worker=worker["id"],
                        coordinator=self.coordinator_url,
                    )
                else:
                    await loop.run_in_executor(None, self._heartbeat)
            except UnknownWorkerError:
                # Coordinator restarted and forgot us: re-register.
                self.worker_id = None
                continue
            except ServiceError:
                pass  # coordinator briefly unreachable: keep the loop
            await asyncio.sleep(self.interval())

    async def stop(self) -> None:
        """Best-effort deregister (graceful leave) and end the loop."""
        self._stopping = True
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(None, self._deregister)
        except ServiceError:
            pass


class LocalWorkerPool:
    """N ``repro worker`` subprocesses joined to one coordinator."""

    def __init__(
        self,
        coordinator_url: str,
        count: int,
        cache_dir: str,
        state_root: str,
        host: str = "127.0.0.1",
        job_workers: int = 1,
        run_workers: int = 1,
        lease_seconds: Optional[float] = None,
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.coordinator_url = coordinator_url
        self.count = max(0, int(count))
        self.cache_dir = cache_dir
        self.state_root = state_root
        self.host = host
        self.job_workers = job_workers
        self.run_workers = run_workers
        self.lease_seconds = lease_seconds
        self.env = env
        self._procs: List[subprocess.Popen] = []
        self._logs: List[Any] = []

    def start(self) -> List[int]:
        """Spawn the workers; returns their pids."""
        os.makedirs(self.state_root, exist_ok=True)
        env = dict(self.env if self.env is not None else os.environ)
        # Carry the ambient trace context (if any) into the worker
        # processes; REPRO_TRACE itself flows via plain env inheritance.
        inject_env(env)
        for index in range(self.count):
            state_dir = os.path.join(self.state_root, f"worker-{index}")
            log = open(
                os.path.join(self.state_root, f"worker-{index}.log"), "a"
            )
            argv = [
                sys.executable, "-m", "repro", "worker",
                "--coordinator", self.coordinator_url,
                "--host", self.host, "--port", "0",
                "--state-dir", state_dir,
                "--cache-dir", self.cache_dir,
                "--job-workers", str(self.job_workers),
                "--run-workers", str(self.run_workers),
            ]
            if self.lease_seconds is not None:
                argv += ["--lease", str(self.lease_seconds)]
            proc = subprocess.Popen(
                argv, stdout=log, stderr=subprocess.STDOUT, env=env
            )
            self._procs.append(proc)
            self._logs.append(log)
        trace_event(
            "fleet.pool_start", count=self.count, pids=self.pids()
        )
        return self.pids()

    def pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    def poll(self) -> List[Optional[int]]:
        return [proc.poll() for proc in self._procs]

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker (drain), SIGKILL stragglers."""
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except OSError:
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    pass
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass
        trace_event("fleet.pool_stop", count=self.count)
