"""Thin blocking HTTP client for the job service.

Stdlib-only (``urllib``), mirroring the server's endpoints 1:1 and
raising the same structured exceptions the service raises -- the 429
family on throttle (:class:`~repro.errors.QueueFullError` /
:class:`~repro.errors.QuotaExceededError` /
:class:`~repro.errors.RateLimitedError`, each with its retry hint and
identity fields rehydrated from the payload),
:class:`~repro.errors.UnknownJobError` /
:class:`~repro.errors.UnknownWorkerError` on 404,
:class:`~repro.errors.JobStateError` on 409, and
:class:`~repro.errors.ServiceUnavailableError` on 503 -- so callers and
tests handle local and remote failures identically.  ``submit`` can
honor the server's retry-after hint itself (``retries=``).  Used by
``repro submit`` / ``repro status`` / ``repro fetch``, by the fleet
dispatcher to drive workers, and by workers to register/heartbeat with
their coordinator.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import (
    JobSpecError,
    JobStateError,
    QueueFullError,
    QuotaExceededError,
    RateLimitedError,
    ServiceError,
    ServiceUnavailableError,
    SessionStateError,
    StreamError,
    ThrottledError,
    UnknownJobError,
    UnknownSessionError,
    UnknownWorkerError,
)
from repro.obs.trace_context import current, inject_headers
from repro.obs.tracing import trace_span

#: Terminal job states (mirrors :mod:`repro.service.store` without
#: importing the simulator stack into light client contexts).
_TERMINAL = ("done", "failed", "cancelled")


class ServiceClient:
    """Talk to one ``repro serve`` instance at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        # Injectable for tests that exercise retry backoff without
        # actually sleeping.
        self._sleep = time.sleep

    # -- transport ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        inject_headers(headers)
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout if timeout is not None else self.timeout
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None
        return payload

    @staticmethod
    def _to_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            payload = {}
        message = payload.get("message", f"HTTP {exc.code}")
        if exc.code == 429:
            code = payload.get("error", "queue_full")
            retry_after = float(payload.get("retry_after_seconds", 1.0))
            if code == "quota_exceeded":
                return QuotaExceededError(
                    payload.get("tenant", "anonymous"),
                    active=int(payload.get("active", 0)),
                    limit=int(payload.get("limit", 0)),
                    retry_after_seconds=retry_after,
                )
            if code == "rate_limited":
                return RateLimitedError(
                    payload.get("tenant", "anonymous"),
                    rate=float(payload.get("rate", 0.0)),
                    retry_after_seconds=retry_after,
                )
            return QueueFullError(
                depth=int(payload.get("depth", 0)),
                limit=int(payload.get("limit", 0)),
                retry_after_seconds=retry_after,
            )
        if exc.code == 404:
            if payload.get("error") == "unknown_worker":
                return UnknownWorkerError(
                    payload.get("worker_id", message)
                )
            if payload.get("error") == "unknown_session":
                return UnknownSessionError(
                    payload.get("session_id", message)
                )
            return UnknownJobError(payload.get("job_id", message))
        if exc.code == 409:
            if payload.get("error") == "session_state":
                return SessionStateError(
                    message, state=payload.get("state", "")
                )
            return JobStateError(message, state=payload.get("state", ""))
        if exc.code == 503:
            return ServiceUnavailableError(message)
        if exc.code == 400:
            if payload.get("error") == "bad_delta":
                return StreamError(message)
            return JobSpecError(message)
        return ServiceError(f"HTTP {exc.code}: {message}")

    # -- endpoints ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/metrics")

    def metrics_prom(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prom``)."""
        request = urllib.request.Request(
            self.base_url + "/metrics?format=prom",
            headers={"Accept": "text/plain"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise self._to_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    def submit(
        self,
        spec: Mapping[str, Any],
        client: str = "anonymous",
        priority: int = 0,
        retries: int = 0,
        max_retry_wait: float = 30.0,
    ) -> Dict[str, Any]:
        """Submit one job spec; returns the job record.

        With ``retries > 0``, a throttled submission (429: queue full,
        quota exceeded, or rate limited) sleeps out the server's
        ``retry_after_seconds`` hint (capped at ``max_retry_wait``) and
        retries, up to ``retries`` extra attempts; the final throttle is
        re-raised.

        With ``REPRO_TRACE`` set this is where a distributed trace is
        born: the ``client.submit`` span mints a trace root (unless an
        ambient context already exists) and its context rides both the
        request header and the spec's ``trace`` field, so every
        scheduler/fleet/worker span for this job stitches under it.
        """
        spec_body = dict(spec)
        with trace_span("client.submit", client=client):
            ctx = current()
            if ctx is not None and not spec_body.get("trace"):
                spec_body["trace"] = ctx.traceparent()
            body = {
                "spec": spec_body, "client": client, "priority": priority
            }
            attempts = max(0, int(retries))
            while True:
                try:
                    payload = self._request("POST", "/v1/jobs", body=body)
                except ThrottledError as exc:
                    if attempts <= 0:
                        raise
                    attempts -= 1
                    wait = min(
                        max(0.0, float(exc.retry_after_seconds)),
                        max_retry_wait,
                    )
                    self._sleep(wait)
                    continue
                return payload["job"]

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def result(self, job_id: str) -> Dict[str, Any]:
        """The completed run's JSON payload (job + result)."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def events(
        self, job_id: str, since: int = 0, timeout: float = 30.0
    ) -> Tuple[List[Dict[str, Any]], int, str]:
        """One long-poll round: ``(events, next_since, job_state)``."""
        payload = self._request(
            "GET",
            f"/v1/jobs/{job_id}/events?since={int(since)}"
            f"&timeout={timeout:g}",
            timeout=timeout + 15.0,
        )
        return payload["events"], int(payload["next"]), payload["state"]

    # -- streaming session endpoints ------------------------------------

    def create_session(
        self,
        graph: str,
        seed: int = 42,
        client: str = "anonymous",
    ) -> Dict[str, Any]:
        """Pin a base graph at the service; returns the session record."""
        with trace_span("client.session", graph=graph):
            return self._request(
                "POST",
                "/v1/sessions",
                body={"graph": graph, "seed": int(seed), "client": client},
            )["session"]

    def sessions(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/sessions")["sessions"]

    def session(self, session_id: str) -> Dict[str, Any]:
        return self._request(
            "GET", f"/v1/sessions/{session_id}"
        )["session"]

    def close_session(self, session_id: str) -> Dict[str, Any]:
        return self._request(
            "DELETE", f"/v1/sessions/{session_id}"
        )["session"]

    def apply_delta(
        self,
        session_id: str,
        inserts: Optional[List[List[int]]] = None,
        deletes: Optional[List[List[int]]] = None,
    ) -> Dict[str, Any]:
        """Append one delta batch; returns the advanced session record."""
        with trace_span("client.delta", session=session_id):
            return self._request(
                "POST",
                f"/v1/sessions/{session_id}/deltas",
                body={
                    "inserts": [list(e) for e in (inserts or [])],
                    "deletes": [list(e) for e in (deletes or [])],
                },
            )["session"]

    def compact_session(self, session_id: str) -> Dict[str, Any]:
        with trace_span("client.compact", session=session_id):
            return self._request(
                "POST", f"/v1/sessions/{session_id}/compact"
            )["session"]

    def session_submit(
        self,
        session_id: str,
        workload: str = "pr",
        mode: str = "incremental",
        source: Optional[int] = None,
        client: str = "anonymous",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit a query against the session's current version.

        Traced like :meth:`submit`: the ``client.submit`` span roots the
        distributed trace, and the server inherits it from the request
        header so the session run's spans stitch underneath.
        """
        with trace_span(
            "client.submit", client=client, session=session_id
        ):
            body: Dict[str, Any] = {
                "workload": workload,
                "mode": mode,
                "client": client,
                "priority": int(priority),
            }
            if source is not None:
                body["source"] = int(source)
            return self._request(
                "POST", f"/v1/sessions/{session_id}/jobs", body=body
            )["job"]

    # -- fleet / worker endpoints ---------------------------------------

    def register_worker(
        self,
        url: str,
        worker_id: Optional[str] = None,
        capacity: int = 1,
        lease_seconds: Optional[float] = None,
        meta: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Register (or re-register) a worker; returns its record."""
        body: Dict[str, Any] = {"url": url, "capacity": int(capacity)}
        if worker_id:
            body["worker_id"] = worker_id
        if lease_seconds is not None:
            body["lease_seconds"] = float(lease_seconds)
        if meta:
            body["meta"] = dict(meta)
        return self._request("POST", "/v1/workers", body=body)["worker"]

    def worker_heartbeat(self, worker_id: str) -> Dict[str, Any]:
        return self._request(
            "POST", f"/v1/workers/{worker_id}/heartbeat"
        )["worker"]

    def deregister_worker(self, worker_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/workers/{worker_id}")

    def workers(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/v1/workers")["workers"]

    # -- conveniences ---------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_timeout: float = 15.0,
    ) -> Dict[str, Any]:
        """Long-poll events until the job settles; returns the job.

        Raises :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        since = 0
        while True:
            _, since, state = self.events(
                job_id, since=since, timeout=poll_timeout
            )
            if state in _TERMINAL:
                return self.job(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout:g}s"
                )
