"""Energy estimation for NOVA runs.

Combines the FPGA prototype's measured per-unit power (Table V) with
standard per-bit DRAM access energies to turn a simulated run into an
energy estimate and a GTEPS/W figure of merit -- the metric accelerator
papers report alongside raw throughput.

Components:

- **on-chip pipeline**: the Table V unit powers (MPU/VMU/MGU/NoC,
  3.274 W per GPN at 1 GHz) scaled by the run's duration and by the
  clock ratio of the simulated configuration;
- **DRAM access energy**: per-bit energies for HBM2 and DDR4 applied to
  the run's byte traffic (wasteful prefetch reads included -- overfetch
  costs energy, not just bandwidth);
- **network energy**: per-bit link energy applied to NoC traffic.

All constants are documented estimates, not measurements; the value of
the model is *relative* comparisons (e.g. the FIFO-spilling ablation's
extra writes, or road's overfetch energy) on a consistent basis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.analysis.fpga import FPGA_UNITS
from repro.core.metrics import RunResult
from repro.errors import ConfigError

#: Per-bit DRAM access energies (documented estimates, pJ/bit).
HBM2_PJ_PER_BIT = 4.0
DDR4_PJ_PER_BIT = 15.0
#: Short-reach electrical link energy, pJ/bit.
LINK_PJ_PER_BIT = 2.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules by component for one run."""

    pipeline_j: float
    hbm_j: float
    ddr_j: float
    network_j: float

    @property
    def total_j(self) -> float:
        return self.pipeline_j + self.hbm_j + self.ddr_j + self.network_j

    def shares(self) -> Dict[str, float]:
        total = self.total_j
        if total <= 0:
            return {}
        return {
            "pipeline": self.pipeline_j / total,
            "hbm": self.hbm_j / total,
            "ddr": self.ddr_j / total,
            "network": self.network_j / total,
        }


@dataclass(frozen=True)
class EnergyReport:
    """Energy and efficiency figures for one run."""

    breakdown: EnergyBreakdown
    elapsed_seconds: float
    edges_traversed: int

    @property
    def total_j(self) -> float:
        return self.breakdown.total_j

    @property
    def average_watts(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.total_j / self.elapsed_seconds

    @property
    def nj_per_edge(self) -> float:
        if self.edges_traversed <= 0:
            return 0.0
        return self.total_j / self.edges_traversed * 1e9

    @property
    def gteps_per_watt(self) -> float:
        watts = self.average_watts
        if watts <= 0 or self.elapsed_seconds <= 0:
            return 0.0
        gteps = self.edges_traversed / self.elapsed_seconds / 1e9
        return gteps / watts

    def summary(self) -> str:
        shares = self.breakdown.shares()
        share_text = ", ".join(f"{k}={v:.0%}" for k, v in shares.items())
        return (
            f"energy {self.total_j * 1e6:.2f} uJ "
            f"({self.average_watts:.2f} W avg, "
            f"{self.nj_per_edge:.3f} nJ/edge, "
            f"{self.gteps_per_watt:.2f} GTEPS/W) [{share_text}]"
        )


def gpn_pipeline_watts(frequency_hz: float = 2e9) -> float:
    """Table V's per-GPN pipeline power, scaled from 1 GHz to the target
    clock (dynamic power scales ~linearly with frequency)."""
    if frequency_hz <= 0:
        raise ConfigError("frequency must be positive")
    table_v_watts = sum(u.power_mw for u in FPGA_UNITS.values()) / 1e3
    return table_v_watts * (frequency_hz / 1e9)


def estimate_energy(
    run: RunResult,
    num_gpns: int,
    frequency_hz: float = 2e9,
) -> EnergyReport:
    """Estimate a NOVA run's energy from its traffic and duration.

    Only NOVA runs carry the per-category HBM/DDR/network traffic the
    model needs; other systems' RunResults are rejected.
    """
    if run.system != "nova":
        raise ConfigError(
            f"energy model covers NOVA runs; got {run.system!r}"
        )
    if num_gpns <= 0:
        raise ConfigError("num_gpns must be positive")
    hbm_bytes = (
        run.traffic.get("hbm_useful_read_bytes", 0)
        + run.traffic.get("hbm_wasteful_read_bytes", 0)
        + run.traffic.get("hbm_write_bytes", 0)
    )
    ddr_bytes = run.traffic.get("ddr_bytes", 0)
    network_bytes = run.traffic.get("network_bytes", 0)
    breakdown = EnergyBreakdown(
        pipeline_j=gpn_pipeline_watts(frequency_hz)
        * num_gpns
        * run.elapsed_seconds,
        hbm_j=hbm_bytes * 8 * HBM2_PJ_PER_BIT * 1e-12,
        ddr_j=ddr_bytes * 8 * DDR4_PJ_PER_BIT * 1e-12,
        network_j=network_bytes * 8 * LINK_PJ_PER_BIT * 1e-12,
    )
    return EnergyReport(
        breakdown=breakdown,
        elapsed_seconds=run.elapsed_seconds,
        edges_traversed=run.edges_traversed,
    )
