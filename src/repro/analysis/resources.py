"""Tracker capacity (Eq 1-2) and terascale resource sizing (Table IV).

Section III-D works the WDC12 example: 3.6 B vertices, 129 B edges,
16-byte vertices in HBM2 with 32-byte atoms.  A per-vertex bit vector
needs ~440 MiB; tracking active *blocks* halves that; NOVA's superblock
counters (128 blocks per superblock, log2(128)+1 = 8 bits each) need
only ~16 MiB -- 27x less than the bit vector.

Table IV scales NOVA, PolyGraph (sliced and non-sliced), and Dalorex to
hold WDC12 (53 GiB of vertices + 959.15 GiB of edges).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.baselines.dalorex import dalorex_requirements
from repro.errors import ConfigError
from repro.units import GiB, MiB


@dataclass(frozen=True)
class GraphScale:
    """Vertex/edge counts with the paper's record sizes."""

    name: str
    num_vertices: int
    num_edges: int
    vertex_bytes: int = 16
    edge_bytes: int = 8

    @property
    def vertex_capacity_bytes(self) -> int:
        return self.num_vertices * self.vertex_bytes

    @property
    def edge_capacity_bytes(self) -> int:
        return self.num_edges * self.edge_bytes

    @property
    def footprint_bytes(self) -> int:
        return self.vertex_capacity_bytes + self.edge_capacity_bytes


#: The WDC12 hyperlink graph (Section III-D / Table IV).
WDC12 = GraphScale("WDC12", 3_600_000_000, 129_000_000_000)


def bitvector_bits(num_vertices: int) -> int:
    """Naive tracking: one bit per vertex."""
    return num_vertices


def active_block_bits(num_vertices: int, vertex_bytes: int = 16, block_bytes: int = 32) -> int:
    """One bit per memory block (a block holds block/vertex vertices)."""
    vertices_per_block = block_bytes // vertex_bytes
    return -(-num_vertices // vertices_per_block)


def tracker_requirements(
    vertex_capacity_bytes: int,
    superblock_dim: int = 128,
    block_bytes: int = 32,
) -> int:
    """Equations 1-2: tracker bits for a given vertex-memory capacity."""
    if superblock_dim <= 0 or block_bytes <= 0:
        raise ConfigError("superblock_dim and block_bytes must be positive")
    num_superblocks = math.ceil(
        vertex_capacity_bytes / (superblock_dim * block_bytes)
    )
    counter_bits = int(math.log2(superblock_dim)) + 1
    return counter_bits * num_superblocks


@dataclass(frozen=True)
class AcceleratorRequirements:
    """One row of Table IV."""

    accelerator: str
    hbm_stacks: int
    hbm_bytes: int
    ddr_channels: int
    ddr_bytes: int
    sram_bytes: int
    cores: int
    slices: int

    def row(self) -> str:
        hbm = f"{self.hbm_stacks} ({self.hbm_bytes / GiB:.0f} GiB)" if self.hbm_stacks else "-"
        ddr = f"{self.ddr_channels} ({self.ddr_bytes / GiB:.0f} GiB)" if self.ddr_channels else "-"
        if self.sram_bytes >= GiB:
            sram = f"{self.sram_bytes / GiB:.0f} GiB"
        else:
            sram = f"{self.sram_bytes / MiB:.0f} MiB"
        return (
            f"{self.accelerator:22s} {hbm:18s} {ddr:14s} {sram:>8s} "
            f"{self.cores:>8,} {self.slices:>4}"
        )


def terascale_requirements(
    graph: GraphScale = WDC12,
    hbm_stack_bytes: int = 4 * GiB,
    pg_hbm_stack_bytes: int = 8 * GiB,
    ddr_channel_bytes: int = 32 * GiB,
    nova_pes_per_gpn: int = 8,
    nova_ddr_per_gpn: int = 4,
    nova_sram_per_gpn: float = 1.5 * MiB,
    pg_cores_per_node: int = 16,
    pg_onchip_per_node: int = 32 * MiB,
    pg_replication: float = 1.07,
) -> List[AcceleratorRequirements]:
    """Reproduce Table IV: resources for each accelerator to hold ``graph``.

    - **NOVA**: GPN count set by HBM stacks for the vertex set (4 GiB
      each); DDR channels follow at 4 per GPN; SRAM at 1.5 MiB per GPN.
    - **PolyGraph (sliced)**: everything in HBM (8 GiB stacks); 32 MiB
      on-chip per node; temporal slices sized by total SRAM with a
      replication allowance.
    - **PolyGraph non-sliced**: the whole vertex set must fit in SRAM,
      scaling node count with it.
    - **Dalorex**: the whole graph on-chip, ~4 MiB per core.
    """
    rows: List[AcceleratorRequirements] = []

    # NOVA.
    gpns = math.ceil(graph.vertex_capacity_bytes / hbm_stack_bytes)
    ddr_channels = gpns * nova_ddr_per_gpn
    rows.append(
        AcceleratorRequirements(
            accelerator="NOVA",
            hbm_stacks=gpns,
            hbm_bytes=gpns * hbm_stack_bytes,
            ddr_channels=ddr_channels,
            ddr_bytes=ddr_channels * ddr_channel_bytes,
            sram_bytes=int(gpns * nova_sram_per_gpn),
            cores=gpns * nova_pes_per_gpn,
            slices=1,
        )
    )

    # PolyGraph, sliced: vertices + edges in HBM (with replica headroom),
    # 32 MiB SRAM per node; temporal slices hold full 16 B vertex records
    # on-chip while resident.
    pg_bytes = int(graph.footprint_bytes * pg_replication)
    pg_stacks = math.ceil(pg_bytes / pg_hbm_stack_bytes)
    pg_sram = pg_stacks * pg_onchip_per_node
    pg_slices = math.ceil(
        graph.num_vertices * graph.vertex_bytes * pg_replication / pg_sram
    )
    rows.append(
        AcceleratorRequirements(
            accelerator="PolyGraph",
            hbm_stacks=pg_stacks,
            hbm_bytes=pg_stacks * pg_hbm_stack_bytes,
            ddr_channels=0,
            ddr_bytes=0,
            sram_bytes=pg_sram,
            cores=pg_stacks * pg_cores_per_node,
            slices=pg_slices,
        )
    )

    # PolyGraph, non-sliced: the whole vertex set lives in SRAM.  Nodes
    # are bounded by a ~144 MiB reticle-scale on-chip budget each, so the
    # node count scales with the SRAM bill.
    ns_sram = graph.vertex_capacity_bytes
    ns_nodes = math.ceil(ns_sram / (144 * MiB))
    ns_stacks = math.ceil(graph.edge_capacity_bytes / pg_hbm_stack_bytes)
    ns_stacks = 1 << math.ceil(math.log2(ns_stacks))  # provisioned in powers of two
    rows.append(
        AcceleratorRequirements(
            accelerator="PolyGraph non-sliced",
            hbm_stacks=ns_stacks,
            hbm_bytes=ns_stacks * pg_hbm_stack_bytes,
            ddr_channels=0,
            ddr_bytes=0,
            sram_bytes=ns_sram,
            cores=ns_nodes * pg_cores_per_node,
            slices=1,
        )
    )

    # Dalorex: everything on-chip.
    dal = dalorex_requirements(
        graph.num_vertices, graph.num_edges, graph.vertex_bytes, graph.edge_bytes
    )
    rows.append(
        AcceleratorRequirements(
            accelerator="Dalorex",
            hbm_stacks=0,
            hbm_bytes=0,
            ddr_channels=0,
            ddr_bytes=0,
            sram_bytes=dal.sram_bytes,
            cores=dal.cores,
            slices=1,
        )
    )
    return rows
