"""Analytical models backing the paper's static tables.

- :mod:`repro.analysis.resources` -- tracker capacity (Equations 1-2 and
  the WDC12 example of Section III-D) and the terascale resource
  requirements of Table IV.
- :mod:`repro.analysis.fpga` -- the per-unit FPGA resource/power
  estimates of Table V.
- :mod:`repro.analysis.tradeoffs` -- the spilling-method trade-off
  comparison of Table I.
"""

from repro.analysis.resources import (
    WDC12,
    GraphScale,
    tracker_requirements,
    bitvector_bits,
    active_block_bits,
    terascale_requirements,
)
from repro.analysis.fpga import FPGA_UNITS, U280, gpn_fpga_report
from repro.analysis.tradeoffs import SpillingMethod, spilling_comparison
from repro.analysis.preprocessing import (
    AmortizationReport,
    amortization,
    preprocessing_seconds,
)
from repro.analysis.energy import (
    EnergyBreakdown,
    EnergyReport,
    estimate_energy,
    gpn_pipeline_watts,
)

__all__ = [
    "WDC12",
    "GraphScale",
    "tracker_requirements",
    "bitvector_bits",
    "active_block_bits",
    "terascale_requirements",
    "FPGA_UNITS",
    "U280",
    "gpn_fpga_report",
    "SpillingMethod",
    "spilling_comparison",
    "AmortizationReport",
    "amortization",
    "preprocessing_seconds",
    "EnergyBreakdown",
    "EnergyReport",
    "estimate_energy",
    "gpn_pipeline_watts",
]
