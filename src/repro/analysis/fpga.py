"""FPGA prototype resource estimates (Table V).

The paper synthesizes one GPN (8 PEs) on a Xilinx Alveo U280 at 1 GHz.
We cannot synthesize RTL here, so Table V is reproduced from a per-unit
resource database whose entries are the paper's post-synthesis numbers
for the three pipeline units and the NoC; :func:`gpn_fpga_report`
composes them into the per-GPN totals and device-utilization
percentages, and estimates how many GPNs fit on the device (the paper
fits 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class UnitResources:
    """Post-synthesis resources of one unit instance group (8 PEs)."""

    name: str
    lut: int
    ff: int
    bram: int
    uram: int
    power_mw: int


#: Table V rows: resources of the 8 instances of each unit in a GPN.
FPGA_UNITS: Dict[str, UnitResources] = {
    "mpu": UnitResources("8x Message Processing Unit", 6032, 7472, 16, 24, 1120),
    "vmu": UnitResources("8x Vertex Management Unit", 5160, 5560, 64, 64, 1396),
    "mgu": UnitResources("8x Message Generation Unit", 1640, 4840, 16, 8, 752),
    "noc": UnitResources("NoC", 3, 145, 0, 0, 6),
}


@dataclass(frozen=True)
class DeviceResources:
    """An FPGA device's available resources."""

    name: str
    lut: int
    ff: int
    bram: int
    uram: int


#: Xilinx Alveo U280 (UltraScale+ XCU280).
U280 = DeviceResources("Alveo U280", 1_303_680, 2_607_360, 2016, 960)


@dataclass(frozen=True)
class GPNFpgaReport:
    """Composed Table V: one GPN on one device."""

    units: List[UnitResources]
    total: UnitResources
    utilization: Dict[str, float]
    gpns_fit: int

    def render(self) -> str:
        lines = [
            f"{'Unit':28s} {'LUT':>7} {'FF':>7} {'BRAM':>5} {'URAM':>5} {'mW':>6}"
        ]
        for unit in self.units:
            lines.append(
                f"{unit.name:28s} {unit.lut:>7} {unit.ff:>7} "
                f"{unit.bram:>5} {unit.uram:>5} {unit.power_mw:>6}"
            )
        total = self.total
        lines.append(
            f"{'Total (1 GPN)':28s} {total.lut:>7} {total.ff:>7} "
            f"{total.bram:>5} {total.uram:>5} {total.power_mw:>6}"
        )
        lines.append(
            "Utilization: "
            + ", ".join(f"{k}={v:.2%}" for k, v in self.utilization.items())
        )
        lines.append(f"GPNs fitting on device: {self.gpns_fit}")
        return "\n".join(lines)


def gpn_fpga_report(device: DeviceResources = U280) -> GPNFpgaReport:
    """Compose Table V for one GPN and report device utilization."""
    units = list(FPGA_UNITS.values())
    total = UnitResources(
        name="total",
        lut=sum(u.lut for u in units),
        ff=sum(u.ff for u in units),
        bram=sum(u.bram for u in units),
        uram=sum(u.uram for u in units),
        power_mw=sum(u.power_mw for u in units),
    )
    utilization = {
        "lut": total.lut / device.lut,
        "ff": total.ff / device.ff,
        "bram": total.bram / device.bram,
        "uram": total.uram / device.uram,
    }
    gpns_fit = int(1 / max(utilization.values()))
    return GPNFpgaReport(
        units=units, total=total, utilization=utilization, gpns_fit=gpns_fit
    )
