"""Preprocessing-cost amortization (Section II-C1).

The paper argues that heavyweight graph preprocessing (community
reordering like RABBIT) is hard to amortize: Balaji et al. measured
RABBIT++ needing 1047 SpMV-kernel runs to pay for itself, while
lightweight id-chunking (Gemini) and random placement are essentially
free.  This module makes the argument quantitative for *this* system:

- preprocessing cost = a per-edge operation count for each placement
  strategy, converted to time on the software platform that would run it
  (the Ligra-class machine of Section V);
- per-run benefit = the measured difference in accelerator run time
  between the preprocessed placement and the free one;
- amortization = runs needed before the preprocessing pays back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph

#: Rough operations per edge for each placement strategy's preprocessing.
#: Random/interleave are O(V) relabelings (counted as ~0 per edge);
#: degree sorting is O(V log V) (~1 op/edge on typical densities);
#: community/locality ordering needs several passes over every edge
#: (label propagation / BFS / aggregation) -- RABBIT-class costs.
STRATEGY_OPS_PER_EDGE: Dict[str, float] = {
    "interleave": 0.0,
    "random": 0.05,
    "load_balanced": 1.0,
    "locality": 30.0,
}


@dataclass(frozen=True)
class AmortizationReport:
    """Preprocessing cost vs per-run benefit for one strategy pair."""

    strategy: str
    baseline: str
    preprocessing_seconds: float
    baseline_run_seconds: float
    strategy_run_seconds: float

    @property
    def per_run_benefit_seconds(self) -> float:
        return self.baseline_run_seconds - self.strategy_run_seconds

    @property
    def amortization_runs(self) -> float:
        """Runs needed before preprocessing pays back (inf if never)."""
        benefit = self.per_run_benefit_seconds
        if benefit <= 0:
            return float("inf")
        return self.preprocessing_seconds / benefit

    def row(self) -> str:
        runs = self.amortization_runs
        runs_text = "never" if runs == float("inf") else f"{runs:,.0f} runs"
        return (
            f"{self.strategy:>14} vs {self.baseline:<11} "
            f"prep={self.preprocessing_seconds * 1e3:9.3f} ms  "
            f"benefit/run={self.per_run_benefit_seconds * 1e6:9.2f} us  "
            f"amortized after {runs_text}"
        )


def preprocessing_seconds(
    graph: CSRGraph,
    strategy: str,
    ops_per_second: float = 2e9,
) -> float:
    """Modelled preprocessing time for one placement strategy.

    ``ops_per_second`` is the effective per-edge processing rate of the
    host that runs the preprocessing (graph kernels on the Section V
    software platform sustain a few billion simple edge-ops/second).
    """
    if strategy not in STRATEGY_OPS_PER_EDGE:
        raise ConfigError(
            f"unknown strategy {strategy!r}; known: "
            f"{sorted(STRATEGY_OPS_PER_EDGE)}"
        )
    if ops_per_second <= 0:
        raise ConfigError("ops_per_second must be positive")
    return STRATEGY_OPS_PER_EDGE[strategy] * graph.num_edges / ops_per_second


def amortization(
    graph: CSRGraph,
    strategy: str,
    strategy_run_seconds: float,
    baseline_run_seconds: float,
    baseline: str = "random",
    ops_per_second: float = 2e9,
) -> AmortizationReport:
    """Build the amortization report from measured run times."""
    return AmortizationReport(
        strategy=strategy,
        baseline=baseline,
        preprocessing_seconds=preprocessing_seconds(
            graph, strategy, ops_per_second
        ),
        baseline_run_seconds=baseline_run_seconds,
        strategy_run_seconds=strategy_run_seconds,
    )
