"""Spilling-method trade-offs (Table I).

Two ways to spill active vertices to off-chip memory:

- **Off-chip FIFO buffer**: append a copy of each active vertex.  Two
  writes per spill (vertex set + buffer), cheap retrieval (pop), but
  coalescing requires searching the buffer and metadata must store each
  vertex's address; worst-case extra memory is O(V*E) copies.
- **Overwrite in the vertex set** (NOVA): the spill *is* the ordinary
  write-back of the vertex -- one write, zero extra capacity, free
  coalescing (later updates overwrite in place) -- at the cost of
  searching the vertex set on retrieval (mitigated by the tracker
  module's superblock counters).

:func:`spilling_comparison` quantifies both methods for a given run
profile so benches can print Table I with concrete numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpillingMethod:
    """Quantified costs of one spilling method."""

    name: str
    writes_per_spill: int
    retrieval: str
    coalescing: str
    metadata_bytes_per_entry: int
    extra_offchip_bytes: int

    def row(self) -> str:
        return (
            f"{self.name:26s} writes/spill={self.writes_per_spill}  "
            f"metadata/entry={self.metadata_bytes_per_entry}B  "
            f"extra-offchip={self.extra_offchip_bytes:,}B  "
            f"retrieval={self.retrieval}  coalescing={self.coalescing}"
        )


def spilling_comparison(
    spills: int,
    distinct_vertices: int,
    vertex_bytes: int = 16,
    message_bytes: int = 8,
    address_bytes: int = 8,
):
    """Table I for a concrete run: ``spills`` events over ``distinct_vertices``.

    Returns (fifo_method, overwrite_method).  The FIFO's extra off-chip
    usage is one buffered copy per spill *event* (no coalescing), while
    overwriting needs none.
    """
    fifo = SpillingMethod(
        name="Off-chip FIFO buffer",
        writes_per_spill=2,
        retrieval="read from FIFO",
        coalescing="search FIFO for same vertex",
        metadata_bytes_per_entry=address_bytes,
        extra_offchip_bytes=spills * (message_bytes + address_bytes),
    )
    overwrite = SpillingMethod(
        name="Overwrite in vertex set",
        writes_per_spill=1,
        retrieval="search vertex set (tracker)",
        coalescing="free (overwrite in place)",
        metadata_bytes_per_entry=0,
        extra_offchip_bytes=0,
    )
    return fifo, overwrite
