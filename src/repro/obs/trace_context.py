"""Cross-process trace-context propagation for REPRO_TRACE spans.

A :class:`TraceContext` is a W3C-traceparent-shaped identity for one
logical operation: a 32-hex-digit trace id shared by every span the
operation touches, plus the 16-hex-digit id of the span that is
"current" at this point in the call tree.  Contexts travel four ways:

* **In process** via a :mod:`contextvars` ``ContextVar`` — each
  :func:`repro.obs.tracing.trace_span` activates a child context for
  its body, so nested spans parent correctly across threads and
  asyncio tasks (each task gets its own context copy).
* **Over HTTP** via the ``X-Repro-Trace-Id`` header, carrying the
  ``traceparent`` string (:func:`inject_headers` /
  :func:`extract_headers`).
* **On job records** via ``JobSpec.trace``, so a job's trace identity
  survives the journal and the fleet dispatch hop.
* **Into subprocesses** via the ``REPRO_TRACEPARENT`` environment
  variable (:func:`inject_env`); a process with no in-process context
  falls back to the parsed env value, cached per process (call
  :func:`refresh` after mutating the variable in tests).

Forked sweep workers need no explicit plumbing: ``fork()`` clones the
submitting thread's contextvars, so the active span context at pool
submission time is simply inherited.

The traceparent wire shape is ``00-<trace_id>-<span_id>-01`` —
version 00, sampled flag always 01 (tracing here is all-or-nothing,
gated by ``REPRO_TRACE`` itself).
"""

from __future__ import annotations

import contextvars
import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional

__all__ = [
    "ENV_TRACEPARENT",
    "TRACE_HEADER",
    "TraceContext",
    "activate",
    "current",
    "extract_headers",
    "inject_env",
    "inject_headers",
    "mint",
    "parse_traceparent",
    "refresh",
]

TRACE_HEADER = "X-Repro-Trace-Id"
ENV_TRACEPARENT = "REPRO_TRACEPARENT"

_VERSION = "00"
_FLAGS = "01"
_TRACE_ID_HEX = 32
_SPAN_ID_HEX = 16


@dataclass(frozen=True)
class TraceContext:
    """One point in a trace: ``span_id`` under trace ``trace_id``.

    ``parent_id`` is the span id of the enclosing span, or ``None``
    for a trace root.  Instances are immutable; derive descendants
    with :meth:`child`.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def traceparent(self) -> str:
        """The W3C-shaped wire form: ``00-<trace>-<span>-01``."""
        return f"{_VERSION}-{self.trace_id}-{self.span_id}-{_FLAGS}"

    def child(self) -> "TraceContext":
        """A fresh span id under the same trace, parented here."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_new_span_id(),
            parent_id=self.span_id,
        )


def _new_trace_id() -> str:
    return secrets.token_hex(_TRACE_ID_HEX // 2)


def _new_span_id() -> str:
    return secrets.token_hex(_SPAN_ID_HEX // 2)


def mint() -> TraceContext:
    """A brand-new root context (fresh trace id, no parent)."""
    return TraceContext(trace_id=_new_trace_id(), span_id=_new_span_id())


def parse_traceparent(text: object) -> Optional[TraceContext]:
    """Parse a traceparent string; ``None`` on any malformation.

    The parsed context has ``parent_id=None``: the embedded span id
    becomes the parent once a local child span activates under it.
    """
    if not isinstance(text, str):
        return None
    parts = text.strip().split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, _flags = parts
    if version != _VERSION:
        return None
    if len(trace_id) != _TRACE_ID_HEX or len(span_id) != _SPAN_ID_HEX:
        return None
    try:
        int(trace_id, 16)
        int(span_id, 16)
    except ValueError:
        return None
    if trace_id == "0" * _TRACE_ID_HEX or span_id == "0" * _SPAN_ID_HEX:
        return None
    return TraceContext(trace_id=trace_id.lower(), span_id=span_id.lower())


# In-process propagation.  ContextVar gives asyncio tasks and threads
# independent views; fork() clones the forking thread's value.
_CURRENT: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)

# Parsed REPRO_TRACEPARENT, cached per process.  A one-element tuple
# distinguishes "cached None" from "not yet parsed".
_ENV_CACHE: Optional[tuple] = None


def _env_context() -> Optional[TraceContext]:
    global _ENV_CACHE
    if _ENV_CACHE is None:
        _ENV_CACHE = (parse_traceparent(os.environ.get(ENV_TRACEPARENT)),)
    return _ENV_CACHE[0]


def refresh() -> None:
    """Drop the cached ``REPRO_TRACEPARENT`` parse (for tests)."""
    global _ENV_CACHE
    _ENV_CACHE = None


def current() -> Optional[TraceContext]:
    """The active context: ContextVar first, env fallback second."""
    ctx = _CURRENT.get()
    if ctx is not None:
        return ctx
    return _env_context()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make ``ctx`` current for the body; no-op when ``ctx`` is None."""
    if ctx is None:
        yield None
        return
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def inject_headers(headers: Dict[str, str]) -> Dict[str, str]:
    """Add the active context's traceparent header, if any."""
    ctx = current()
    if ctx is not None:
        headers[TRACE_HEADER] = ctx.traceparent()
    return headers


def extract_headers(headers: Mapping[str, str]) -> Optional[TraceContext]:
    """Parse the traceparent header from a (lowercased) header map."""
    raw = headers.get(TRACE_HEADER.lower()) or headers.get(TRACE_HEADER)
    return parse_traceparent(raw)


def inject_env(env: Dict[str, str]) -> Dict[str, str]:
    """Add the active context's traceparent to a subprocess env."""
    ctx = current()
    if ctx is not None:
        env[ENV_TRACEPARENT] = ctx.traceparent()
    return env
