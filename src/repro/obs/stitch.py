"""Stitch REPRO_TRACE JSONL files into a cross-process span tree.

Every process in a traced operation (client CLI, coordinator,
subprocess workers, forked sweep workers) appends spans to whatever
``REPRO_TRACE`` file it inherited -- usually the *same* file, since
the env variable flows through :class:`LocalWorkerPool` and ``fork``.
:func:`stitch` groups the records of one trace id and reconnects them
by ``span_id`` / ``parent_span_id`` into a tree; :func:`render_tree`
draws it as a waterfall with per-hop offsets and durations, which is
what the ``repro trace`` CLI verb prints.

Records without a ``trace_id`` (spans emitted before this layer, or
events fired outside any context) are simply ignored; records whose
parent never emitted a span are reported as *orphans* -- a healthy
end-to-end trace has none.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.trace_context import parse_traceparent
from repro.runner.monitor import format_duration

__all__ = [
    "SpanNode",
    "load_trace_records",
    "render_tree",
    "resolve_trace_id",
    "stitch",
    "summarize",
]


@dataclass
class SpanNode:
    record: Dict[str, object]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def span_id(self) -> str:
        return str(self.record.get("span_id", ""))

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def ts(self) -> float:
        return float(self.record.get("ts", 0.0))

    @property
    def dur_ns(self) -> int:
        return int(self.record.get("dur_ns", 0))


def load_trace_records(paths: Sequence[str]) -> List[Dict[str, object]]:
    """All JSON records from the given JSONL files, torn lines skipped."""
    records: List[Dict[str, object]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail line from a killed writer
                if isinstance(record, dict):
                    records.append(record)
    return records


def resolve_trace_id(
    records: Iterable[Dict[str, object]], token: str
) -> Optional[str]:
    """Map a user-supplied token to a trace id present in ``records``.

    Accepts a full trace id, a unique trace-id prefix (>= 6 hex
    chars), a traceparent string, or a job id (matched against the
    ``job`` attribute that service spans carry).
    """
    token = token.strip()
    ctx = parse_traceparent(token)
    if ctx is not None:
        return ctx.trace_id
    trace_ids = {
        str(r["trace_id"]) for r in records if r.get("trace_id")
    }
    if token in trace_ids:
        return token
    if len(token) >= 6:
        prefixed = sorted(t for t in trace_ids if t.startswith(token.lower()))
        if len(prefixed) == 1:
            return prefixed[0]
    for record in records:
        if record.get("job") == token and record.get("trace_id"):
            return str(record["trace_id"])
    return None


def stitch(
    records: Iterable[Dict[str, object]], trace_id: str
) -> Tuple[List[SpanNode], List[SpanNode]]:
    """Build the span tree for one trace: ``(roots, orphans)``.

    A record is a *root* when it has no ``parent_span_id``; an
    *orphan* when its parent id matches no span in the record set.
    Children sort by wall timestamp.  Duplicate span ids (one span id
    should never repeat) keep the first record and drop the rest into
    orphans for visibility.
    """
    nodes: Dict[str, SpanNode] = {}
    ordered: List[SpanNode] = []
    orphans: List[SpanNode] = []
    for record in records:
        if str(record.get("trace_id", "")) != trace_id:
            continue
        node = SpanNode(record)
        if not node.span_id:
            orphans.append(node)
            continue
        if node.span_id in nodes:
            orphans.append(node)
            continue
        nodes[node.span_id] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    for node in ordered:
        parent_id = node.record.get("parent_span_id")
        if parent_id is None:
            roots.append(node)
        elif str(parent_id) in nodes:
            nodes[str(parent_id)].children.append(node)
        else:
            orphans.append(node)
    for node in ordered:
        node.children.sort(key=lambda child: child.ts)
    roots.sort(key=lambda node: node.ts)
    return roots, orphans


def summarize(
    roots: Sequence[SpanNode], orphans: Sequence[SpanNode]
) -> Dict[str, int]:
    def count(nodes: Sequence[SpanNode]) -> int:
        return sum(1 + count(n.children) for n in nodes)

    def pids(nodes: Sequence[SpanNode], seen: set) -> set:
        for node in nodes:
            seen.add(node.record.get("pid"))
            pids(node.children, seen)
        return seen

    return {
        "spans": count(roots) + len(orphans),
        "trees": len(roots),
        "orphans": len(orphans),
        "processes": len(pids(roots, pids(orphans, set()))),
    }


def _duration(node: SpanNode) -> str:
    if node.dur_ns <= 0:
        return "·"  # instantaneous event
    seconds = node.dur_ns / 1e9
    if seconds < 1.0:
        return f"{seconds * 1000.0:.1f}ms"
    return format_duration(seconds)


def render_tree(
    roots: Sequence[SpanNode],
    orphans: Sequence[SpanNode],
    trace_id: str,
) -> str:
    """The waterfall: one line per span, offset from the trace start."""
    lines: List[str] = []
    stats = summarize(roots, orphans)
    lines.append(
        f"trace {trace_id}  spans={stats['spans']} "
        f"processes={stats['processes']} trees={stats['trees']} "
        f"orphans={stats['orphans']}"
    )
    origin = min((r.ts for r in roots), default=0.0)

    def emit(node: SpanNode, prefix: str, tail: str) -> None:
        offset = max(0.0, node.ts - origin)
        label = f"{prefix}{tail}{node.name}"
        meta = (
            f"pid {node.record.get('pid', '?')}  "
            f"+{offset * 1000.0:9.1f}ms  {_duration(node)}"
        )
        if "error" in node.record:
            meta += f"  error={node.record['error']}"
        lines.append(f"{label:<48} {meta}")
        if tail == "":
            child_prefix = prefix
        elif tail == "└─ ":
            child_prefix = prefix + "   "
        else:
            child_prefix = prefix + "│  "
        for i, child in enumerate(node.children):
            last = i == len(node.children) - 1
            emit(child, child_prefix, "└─ " if last else "├─ ")

    for root in roots:
        emit(root, "", "")
    if orphans:
        lines.append("orphaned spans (parent never emitted):")
        for node in sorted(orphans, key=lambda n: n.ts):
            lines.append(
                f"  {node.name}  pid {node.record.get('pid', '?')}  "
                f"parent={node.record.get('parent_span_id')}"
            )
    return "\n".join(lines)
