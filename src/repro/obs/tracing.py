"""Structured span tracing, gated by the ``REPRO_TRACE`` env variable.

When ``REPRO_TRACE`` is unset, :func:`trace_span` is a no-op costing one
environment lookup per span -- spans wrap coarse operations (one run,
one sweep, one CLI command), never the per-quantum hot path.  When set,
every span appends one JSON line::

    {"name": "nova.run", "ts": 1754500000.1, "dur_ns": 81234567,
     "pid": 4242, "workload": "bfs", ...}

``REPRO_TRACE=<path>`` appends to that file; ``1`` / ``true`` /
``stderr`` write to stderr.  Lines are self-contained JSON objects
(JSONL), so traces from concurrent sweep workers interleave safely --
each line is written in a single ``write`` under a process-local lock.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

ENV_VAR = "REPRO_TRACE"

_STDERR_VALUES = ("1", "true", "stderr")
_lock = threading.Lock()


def trace_target() -> Optional[str]:
    """The configured sink (path or stderr marker), or ``None`` if off."""
    value = os.environ.get(ENV_VAR, "").strip()
    return value or None


def trace_enabled() -> bool:
    return trace_target() is not None


def _emit(record: dict) -> None:
    target = trace_target()
    if target is None:  # env changed mid-span: drop silently
        return
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with _lock:
        if target.lower() in _STDERR_VALUES:
            sys.stderr.write(line)
        else:
            with open(target, "a", encoding="utf-8") as f:
                f.write(line)


def trace_event(name: str, **attrs: object) -> None:
    """Emit one instantaneous JSONL record when tracing is enabled.

    Like :func:`trace_span` but for point-in-time facts with no
    duration -- sweep summaries, retries, failures.  A no-op (one env
    lookup) when ``REPRO_TRACE`` is unset.
    """
    if not trace_enabled():
        return
    record = {
        "name": name,
        "ts": time.time(),
        "dur_ns": 0,
        "pid": os.getpid(),
    }
    record.update(attrs)
    _emit(record)


@contextmanager
def trace_span(name: str, **attrs: object) -> Iterator[None]:
    """Time a block and emit one JSONL record when tracing is enabled.

    Extra keyword arguments become fields of the record (keep them
    JSON-serializable).  Exceptions propagate; the span still emits,
    with an ``error`` field naming the exception type.
    """
    if not trace_enabled():
        yield
        return
    wall = time.time()
    start = time.perf_counter_ns()
    error: Optional[str] = None
    try:
        yield
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        record = {
            "name": name,
            "ts": wall,
            "dur_ns": time.perf_counter_ns() - start,
            "pid": os.getpid(),
        }
        if error is not None:
            record["error"] = error
        record.update(attrs)
        _emit(record)
