"""Structured span tracing, gated by the ``REPRO_TRACE`` env variable.

When ``REPRO_TRACE`` is unset, :func:`trace_span` is a no-op costing one
cached-tuple read per span -- spans wrap coarse operations (one run,
one sweep, one CLI command), never the per-quantum hot path.  When set,
every span appends one JSON line::

    {"name": "nova.run", "ts": 1754500000.1, "dur_ns": 81234567,
     "pid": 4242, "trace_id": "4bf9...", "span_id": "00f0...",
     "parent_span_id": "d75e...", "workload": "bfs", ...}

``REPRO_TRACE=<path>`` appends to that file; ``1`` / ``true`` /
``stderr`` write to stderr.  Lines are self-contained JSON objects
(JSONL), so traces from concurrent sweep workers interleave safely --
each line is written in a single ``write`` under a process-local lock.

The sink is parsed from the environment once per process and cached;
call :func:`refresh` after mutating ``REPRO_TRACE`` (tests do this via
an autouse fixture).  The cache is keyed per pid so forked sweep
workers inherit it for free while a hypothetical pre-fork mutation
still re-reads.

Trace identity: when a :mod:`repro.obs.trace_context` context is
active (or ``REPRO_TRACEPARENT`` is set), spans and events carry
``trace_id`` / ``span_id`` / ``parent_span_id`` fields.  A
:func:`trace_span` with no active context *mints a new trace root*, so
top-level operations (``repro sweep``, ``ServiceClient.submit``) start
a trace without explicit plumbing; every nested span -- across
threads, asyncio tasks, forked workers, and (via headers / JobSpec
records) remote processes -- becomes a child.  ``repro trace`` stitches
the resulting records back into one tree.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs import trace_context as _tc

ENV_VAR = "REPRO_TRACE"

_STDERR_VALUES = ("1", "true", "stderr")
_lock = threading.Lock()

# (pid, parsed sink) -- parsed once per process, dropped by refresh().
_SINK_CACHE: Optional[Tuple[int, Optional[str]]] = None


def _read_target() -> Optional[str]:
    value = os.environ.get(ENV_VAR, "").strip()
    return value or None


def trace_target() -> Optional[str]:
    """The configured sink (path or stderr marker), or ``None`` if off.

    Cached per process; call :func:`refresh` after changing the env
    variable (e.g. from a test) to force a re-read.
    """
    global _SINK_CACHE
    pid = os.getpid()
    cache = _SINK_CACHE
    if cache is None or cache[0] != pid:
        cache = (pid, _read_target())
        _SINK_CACHE = cache
    return cache[1]


def refresh() -> None:
    """Drop the cached sink (and trace-context env cache) for tests."""
    global _SINK_CACHE
    _SINK_CACHE = None
    _tc.refresh()


def trace_enabled() -> bool:
    return trace_target() is not None


def _emit(record: dict) -> None:
    target = trace_target()
    if target is None:  # env changed mid-span: drop silently
        return
    line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    with _lock:
        if target.lower() in _STDERR_VALUES:
            sys.stderr.write(line)
        else:
            with open(target, "a", encoding="utf-8") as f:
                f.write(line)


def _stamp(record: dict, ctx: Optional[_tc.TraceContext]) -> dict:
    if ctx is not None:
        record["trace_id"] = ctx.trace_id
        record["span_id"] = ctx.span_id
        if ctx.parent_id is not None:
            record["parent_span_id"] = ctx.parent_id
    return record


def trace_event(name: str, **attrs: object) -> None:
    """Emit one instantaneous JSONL record when tracing is enabled.

    Like :func:`trace_span` but for point-in-time facts with no
    duration -- sweep summaries, retries, failures.  A no-op (one
    cached read) when ``REPRO_TRACE`` is unset.  Events never start a
    trace: with an active context they record a fresh span id under
    the current parent; without one they stay id-less.
    """
    if not trace_enabled():
        return
    record = {
        "name": name,
        "ts": time.time(),
        "dur_ns": 0,
        "pid": os.getpid(),
    }
    ctx = _tc.current()
    _stamp(record, ctx.child() if ctx is not None else None)
    record.update(attrs)
    _emit(record)


@contextmanager
def trace_span(name: str, **attrs: object) -> Iterator[None]:
    """Time a block and emit one JSONL record when tracing is enabled.

    Extra keyword arguments become fields of the record (keep them
    JSON-serializable).  Exceptions propagate; the span still emits,
    with an ``error`` field naming the exception type.

    The span derives a child of the active trace context (minting a
    new trace root when there is none) and activates it for the body,
    so nested spans/events -- including those in threads started or
    processes forked inside the body -- parent under this span.
    """
    if not trace_enabled():
        yield
        return
    parent = _tc.current()
    span = parent.child() if parent is not None else _tc.mint()
    wall = time.time()
    start = time.perf_counter_ns()
    error: Optional[str] = None
    try:
        with _tc.activate(span):
            yield
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        record = {
            "name": name,
            "ts": wall,
            "dur_ns": time.perf_counter_ns() - start,
            "pid": os.getpid(),
        }
        if error is not None:
            record["error"] = error
        _stamp(record, span)
        record.update(attrs)
        _emit(record)
