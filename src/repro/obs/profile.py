"""Bottleneck attribution from a recorded timeline.

:class:`BottleneckReport` consumes the
:meth:`~repro.obs.recorder.TimelineRecorder.timeline_dict` export and
answers *where the simulated time went*: the share of elapsed time each
quantum class (bandwidth- / compute- / queue-bound) and each concrete
resource (hbm, ddr, fabric, reduce_fu, propagate_fu, latency floor)
accounted for.  Shares come from the whole-run ``totals`` section, so
the report stays exact even when the ring buffer wrapped.

``repro profile`` renders the report as a text histogram and exports
``report.to_dict()`` alongside the raw timeline; ``benchmarks`` consume
the same dict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError
from repro.obs.recorder import BOTTLENECK_NAMES, BOUND_CLASSES, TIMELINE_SCHEMA


def _bar(share: float, width: int) -> str:
    filled = int(round(share * width))
    return "#" * filled + "." * (width - filled)


@dataclass
class BottleneckReport:
    """Whole-run time attribution by quantum class and resource."""

    quanta: int
    elapsed_seconds: float
    class_seconds: Dict[str, float]
    class_quanta: Dict[str, int]
    resource_seconds: Dict[str, float]
    resource_quanta: Dict[str, int]
    counters: Dict[str, int]

    @classmethod
    def from_timeline(cls, timeline: Dict[str, object]) -> "BottleneckReport":
        if timeline.get("schema") != TIMELINE_SCHEMA:
            raise ConfigError(
                f"unsupported timeline schema {timeline.get('schema')!r}; "
                f"expected {TIMELINE_SCHEMA}"
            )
        # Tolerate empty or partially populated timelines (a run that
        # closed zero quanta still exports a valid, all-zero report).
        totals = timeline.get("totals") or {}
        return cls(
            quanta=int(timeline.get("quanta") or 0),
            elapsed_seconds=float(totals.get("elapsed_seconds") or 0.0),
            class_seconds=dict(totals.get("class_seconds") or {}),
            class_quanta=dict(totals.get("class_quanta") or {}),
            resource_seconds=dict(totals.get("resource_seconds") or {}),
            resource_quanta=dict(totals.get("resource_quanta") or {}),
            counters=dict(totals.get("counters") or {}),
        )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def class_shares(self) -> Dict[str, float]:
        """Fraction of elapsed time per bound class (0.0 when idle)."""
        if self.elapsed_seconds <= 0:
            return {name: 0.0 for name in BOUND_CLASSES}
        return {
            name: self.class_seconds.get(name, 0.0) / self.elapsed_seconds
            for name in BOUND_CLASSES
        }

    def resource_shares(self) -> Dict[str, float]:
        if self.elapsed_seconds <= 0:
            return {name: 0.0 for name in BOTTLENECK_NAMES}
        return {
            name: self.resource_seconds.get(name, 0.0) / self.elapsed_seconds
            for name in BOTTLENECK_NAMES
        }

    @property
    def empty(self) -> bool:
        """True when nothing was recorded (no quanta or no elapsed time)."""
        return self.quanta == 0 or self.elapsed_seconds <= 0

    @property
    def dominant_class(self) -> str:
        """The bound class holding the largest share of elapsed time.

        ``"none"`` for an empty report -- attributing a dominant class
        to zero recorded time would be arbitrary.
        """
        if self.empty:
            return "none"
        return max(BOUND_CLASSES, key=lambda n: self.class_seconds.get(n, 0.0))

    @property
    def dominant_resource(self) -> str:
        if self.empty:
            return "none"
        return max(
            BOTTLENECK_NAMES, key=lambda n: self.resource_seconds.get(n, 0.0)
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "quanta": self.quanta,
            "elapsed_seconds": self.elapsed_seconds,
            "dominant_class": self.dominant_class,
            "dominant_resource": self.dominant_resource,
            "class_shares": self.class_shares(),
            "class_quanta": dict(self.class_quanta),
            "resource_shares": self.resource_shares(),
            "resource_quanta": dict(self.resource_quanta),
            "counters": dict(self.counters),
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self, width: int = 32) -> str:
        """Text histogram: shares per class, then per resource."""
        if self.empty:
            return "bottleneck report: no quanta recorded"
        lines = [
            f"bottleneck report: {self.quanta} quanta, "
            f"{self.elapsed_seconds * 1e6:.1f} us simulated, dominant "
            f"{self.dominant_class} ({self.dominant_resource})",
            "by class:",
        ]
        shares = self.class_shares()
        for name in BOUND_CLASSES:
            share = shares[name]
            lines.append(
                f"  {name:>9} |{_bar(share, width)}| {share:6.1%}  "
                f"({self.class_quanta.get(name, 0)} quanta)"
            )
        lines.append("by resource:")
        rshares = self.resource_shares()
        for name in sorted(BOTTLENECK_NAMES, key=lambda n: -rshares[n]):
            share = rshares[name]
            if share == 0.0 and self.resource_quanta.get(name, 0) == 0:
                continue
            lines.append(
                f"  {name:>12} |{_bar(share, width)}| {share:6.1%}  "
                f"({self.resource_quanta.get(name, 0)} quanta)"
            )
        counters = self.counters
        lines.append(
            "counters: "
            f"drained={counters.get('messages_drained', 0):,} "
            f"coalesced={counters.get('coalesced', 0):,} "
            f"spilled={counters.get('spilled', 0):,} "
            f"prefetch hits={counters.get('prefetch_hits', 0):,} "
            f"misses={counters.get('prefetch_misses', 0):,}"
        )
        return "\n".join(lines)
