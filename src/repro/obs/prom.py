"""Prometheus text exposition for the :class:`MetricsRegistry`.

:func:`render_prometheus` turns a registry snapshot (counters, gauges,
histogram snapshots) into Prometheus text format 0.0.4: dotted repro
names are sanitized to ``repro_``-prefixed underscore names, counters
gain the conventional ``_total`` suffix, and histograms expand into
the ``_bucket{le="..."}`` / ``_sum`` / ``_count`` triple with a
``+Inf`` bucket equal to the count.

:func:`validate_exposition` is the strict line-format check the CI
observability smoke step and the unit tests share: every line must be
a well-formed comment or sample, every sample's family must have a
preceding ``# TYPE``, and every histogram family must close the
bucket contract (cumulative monotone, ``+Inf`` == ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = ["prom_name", "render_prometheus", "validate_exposition"]

PREFIX = "repro_"
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')
_TYPE_RE = re.compile(
    r"^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r" (?P<kind>counter|gauge|histogram|summary|untyped)$"
)
_HELP_RE = re.compile(r"^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$")


def prom_name(name: str) -> str:
    """``service.queue_wait_seconds`` -> ``repro_service_queue_wait_seconds``."""
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    out = PREFIX + sanitized
    if not _NAME_RE.match(out):  # e.g. fully non-alnum input
        raise ValueError(f"cannot sanitize metric name: {name!r}")
    return out


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: object) -> str:
    if bound == "+Inf":
        return "+Inf"
    return _format_value(float(bound))


def render_prometheus(
    counters: Mapping[str, int],
    gauges: Mapping[str, float],
    histograms: Mapping[str, Mapping[str, object]],
) -> str:
    """Render a registry snapshot as Prometheus text format 0.0.4."""
    lines: List[str] = []
    for name in sorted(counters):
        metric = prom_name(name) + "_total"
        lines.append(f"# HELP {metric} repro counter {name}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    for name in sorted(gauges):
        metric = prom_name(name)
        lines.append(f"# HELP {metric} repro gauge {name}")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    for name in sorted(histograms):
        snap = histograms[name]
        metric = prom_name(name)
        lines.append(f"# HELP {metric} repro histogram {name}")
        lines.append(f"# TYPE {metric} histogram")
        for bound, cumulative in snap.get("buckets", []):  # type: ignore[union-attr]
            lines.append(
                f'{metric}_bucket{{le="{_format_le(bound)}"}} '
                f"{_format_value(int(cumulative))}"
            )
        lines.append(f"{metric}_sum {_format_value(float(snap.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {_format_value(int(snap.get('count', 0)))}")
    return "\n".join(lines) + "\n"


def _parse_labels(raw: Optional[str]) -> Optional[Dict[str, str]]:
    if raw is None:
        return {}
    if raw == "":
        return None  # "{}" with nothing inside is malformed for us
    labels: Dict[str, str] = {}
    for part in raw.split(","):
        part = part.strip()
        if not _LABEL_RE.match(part):
            return None
        key, _, value = part.partition("=")
        labels[key] = value[1:-1]
    return labels


def _parse_value(raw: str) -> Optional[float]:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        return None


def validate_exposition(text: str) -> Tuple[List[str], Dict[str, str]]:
    """Strictly check Prometheus text-format output.

    Returns ``(errors, families)`` where ``families`` maps each
    ``# TYPE``-declared metric family to its kind.  An empty error
    list means the exposition parses cleanly *and* every histogram
    family satisfies the bucket contract.
    """
    errors: List[str] = []
    families: Dict[str, str] = {}
    # family -> list of (labels, value) samples seen.
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}

    def note(lineno: int, message: str) -> None:
        errors.append(f"line {lineno}: {message}")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if line == "":
            continue
        if line != line.strip() or "\t" in line:
            note(lineno, f"stray whitespace: {line!r}")
            continue
        if line.startswith("#"):
            type_match = _TYPE_RE.match(line)
            if type_match:
                name = type_match.group("name")
                if name in families:
                    note(lineno, f"duplicate TYPE for {name}")
                families[name] = type_match.group("kind")
                continue
            if _HELP_RE.match(line):
                continue
            note(lineno, f"malformed comment: {line!r}")
            continue
        sample = _SAMPLE_RE.match(line)
        if not sample:
            note(lineno, f"malformed sample: {line!r}")
            continue
        name = sample.group("name")
        labels = _parse_labels(sample.group("labels"))
        if labels is None:
            note(lineno, f"malformed labels: {line!r}")
            continue
        value = _parse_value(sample.group("value"))
        if value is None:
            note(lineno, f"malformed value: {line!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count", "_total"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        declared = families.get(name) or families.get(family)
        if declared is None:
            note(lineno, f"sample before TYPE declaration: {name}")
            continue
        key = family if declared == "histogram" else name
        samples.setdefault(key, []).append((labels, value))

    for family, kind in families.items():
        if kind != "histogram":
            continue
        rows = samples.get(family, [])
        buckets = [
            (labels["le"], value)
            for labels, value in rows
            if labels.get("le") is not None
        ]
        if not buckets:
            errors.append(f"histogram {family}: no _bucket samples")
            continue
        if buckets[-1][0] != "+Inf":
            errors.append(f"histogram {family}: last bucket must be +Inf")
            continue
        cumulative = [value for _, value in buckets]
        if any(b > a for b, a in zip(cumulative, cumulative[1:])):
            errors.append(f"histogram {family}: buckets not cumulative")
        finite = [_parse_value(le) for le, _ in buckets[:-1]]
        if any(v is None for v in finite) or finite != sorted(finite):  # type: ignore[type-var]
            errors.append(f"histogram {family}: bucket bounds not increasing")
    # _count/_sum presence and the (+Inf == _count) invariant need the
    # raw per-name samples; collect them in one cheap re-scan.
    by_name: Dict[str, List[float]] = {}
    for line in text.splitlines():
        sample = _SAMPLE_RE.match(line) if line and not line.startswith("#") else None
        if sample:
            value = _parse_value(sample.group("value"))
            if value is not None:
                by_name.setdefault(sample.group("name"), []).append(value)
    for family, kind in families.items():
        if kind != "histogram":
            continue
        count_vals = by_name.get(family + "_count")
        sum_vals = by_name.get(family + "_sum")
        if not count_vals:
            errors.append(f"histogram {family}: missing _count")
        if not sum_vals:
            errors.append(f"histogram {family}: missing _sum")
        inf_rows = [
            value
            for labels, value in samples.get(family, [])
            if labels.get("le") == "+Inf"
        ]
        if count_vals and inf_rows and inf_rows[-1] != count_vals[-1]:
            errors.append(
                f"histogram {family}: +Inf bucket {inf_rows[-1]} != "
                f"_count {count_vals[-1]}"
            )
    return errors, families
