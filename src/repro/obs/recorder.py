"""Per-quantum metrics recorders for the NOVA engines.

Both :class:`~repro.core.engine.NovaEngine` and
:class:`~repro.core.engine_scalar.ScalarNovaEngine` call the same hook
once per quantum (guarded by a single precomputed flag, so the default
:class:`NullRecorder` costs one branch):

- :class:`TimelineRecorder` keeps a ring buffer of per-quantum rows --
  messages drained / coalesced / spilled, tracker prefetch hits and
  misses, queue occupancies, and per-resource bandwidth / functional-unit
  utilizations -- plus running totals that survive ring wraparound.  Its
  :meth:`~TimelineRecorder.timeline_dict` export is pure-JSON data: the
  schema behind golden-trace fixtures, the run cache, and the
  ``repro profile`` report.
- :class:`PhaseProfiler` measures wall-clock time per engine phase
  (``mpu`` / ``vmu`` / ``mgu`` / ``close``) via ``perf_counter_ns``,
  sampling one quantum in every ``every``.  Wall-time is
  machine-dependent, so phase profiles are deliberately kept out of the
  timeline export (which must be bit-identical across engines).

The timeline is engine-independent by construction: every field of a
:class:`QuantumObservation` is derived from simulated state the two
engines are already pinned to agree on (``tests/core/test_engine_parity``
and ``tests/core/test_engine_differential``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

#: Bottleneck resource names in code order (index = stored code).
BOTTLENECK_NAMES = ("hbm", "ddr", "reduce_fu", "propagate_fu", "fabric", "latency")

#: Quantum classification: what bounded the quantum's duration.
BOUND_CLASSES = ("bandwidth", "compute", "queue")

_BOUND_OF = {
    "hbm": "bandwidth",
    "ddr": "bandwidth",
    "fabric": "bandwidth",
    "reduce_fu": "compute",
    "propagate_fu": "compute",
    # A latency-floored quantum saturated nothing: the machine was
    # waiting on in-flight messages / queue turnaround, not a resource.
    "latency": "queue",
}

#: TimelineRecorder export format version.
TIMELINE_SCHEMA = 1


def classify_bottleneck(name: str) -> str:
    """Map a bottleneck resource to bandwidth- / compute- / queue-bound."""
    return _BOUND_OF[name]


@dataclass
class QuantumObservation:
    """Everything one engine reports about one closed quantum.

    Counter fields are *cumulative* (lifetime values at quantum close);
    the recorder differentiates them, so engines never track deltas.
    Utilization arrays are per-channel / per-GPN fractions of the
    quantum's duration.
    """

    index: int
    duration_seconds: float
    bottleneck: str
    hbm_util: np.ndarray
    ddr_util: np.ndarray
    reduce_fu_util: np.ndarray
    propagate_fu_util: np.ndarray
    fabric_util: float
    messages_drained: int
    coalesced: int
    spilled: int
    prefetch_hits: int
    prefetch_misses: int
    inbox_backlog: int
    buffer_occupancy: int
    tracked_blocks: int


class MetricsRecorder:
    """The engine-facing protocol.  Base class behaves as a null sink."""

    #: Engines read this once at construction; ``False`` short-circuits
    #: every hook into a single branch per quantum.
    enabled: bool = False

    @property
    def phase_profiler(self) -> Optional["PhaseProfiler"]:
        """The attached phase profiler, if any (None disables sampling)."""
        return None

    def on_quantum(self, obs: QuantumObservation) -> None:
        """Called once per closed quantum (before resources reset)."""

    def timeline_dict(self) -> Optional[Dict[str, object]]:
        """JSON-ready timeline export, or ``None`` if not recording one."""
        return None

    def publish(self, stats) -> None:
        """Mirror recorded aggregates into a :class:`StatGroup`."""


class NullRecorder(MetricsRecorder):
    """The zero-cost default: every hook is a no-op."""


#: Shared singleton used by engines when no recorder is supplied.
NULL_RECORDER = NullRecorder()


class PhaseProfiler(MetricsRecorder):
    """Wall-time per engine phase, sampled one quantum in ``every``.

    Sampling keeps the perf_counter overhead off most quanta; the
    per-phase means extrapolate (phases are homogeneous within a run
    compared to cross-run variance).
    """

    enabled = True

    def __init__(self, every: int = 16) -> None:
        if every <= 0:
            raise ValueError("phase sample interval must be positive")
        self.every = every
        self.total_ns: Dict[str, int] = {}
        self.samples: Dict[str, int] = {}
        self.quanta_sampled = 0

    @property
    def phase_profiler(self) -> "PhaseProfiler":
        return self

    def should_sample(self, quantum_index: int) -> bool:
        return quantum_index % self.every == 0

    def add(self, phase: str, elapsed_ns: int) -> None:
        self.total_ns[phase] = self.total_ns.get(phase, 0) + int(elapsed_ns)
        self.samples[phase] = self.samples.get(phase, 0) + 1
        if phase == "close":  # the last phase of every sampled quantum
            self.quanta_sampled += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "every": self.every,
            "quanta_sampled": self.quanta_sampled,
            "phases": {
                name: {
                    "total_ns": self.total_ns[name],
                    "samples": self.samples[name],
                    "mean_ns": self.total_ns[name] / max(1, self.samples[name]),
                }
                for name in sorted(self.total_ns)
            },
        }

    def render(self) -> str:
        if not self.total_ns:
            return "phase profile: no samples"
        grand = sum(self.total_ns.values())
        lines = [
            f"phase profile ({self.quanta_sampled} quanta sampled, "
            f"1 in {self.every}):"
        ]
        for name in sorted(self.total_ns, key=lambda n: -self.total_ns[n]):
            total = self.total_ns[name]
            mean = total / max(1, self.samples[name])
            share = total / grand if grand else 0.0
            lines.append(
                f"  {name:>5}: {share:6.1%}  mean {mean / 1e3:8.1f} us  "
                f"({self.samples[name]} samples)"
            )
        return "\n".join(lines)

    def publish(self, stats) -> None:
        stats.merge(
            {
                "phase_samples": self.quanta_sampled,
                "phase_ns": dict(self.total_ns),
            }
        )


def timed_call(profiler: PhaseProfiler, phase: str, fn, *args):
    """Run ``fn(*args)`` and charge its wall-time to ``phase``."""
    start = time.perf_counter_ns()
    out = fn(*args)
    profiler.add(phase, time.perf_counter_ns() - start)
    return out


_INT_COLUMNS = (
    "index",
    "messages_drained",
    "coalesced",
    "spilled",
    "prefetch_hits",
    "prefetch_misses",
    "inbox_backlog",
    "buffer_occupancy",
    "tracked_blocks",
)

_FLOAT_COLUMNS = (
    "duration_seconds",
    "hbm_util",
    "hbm_util_mean",
    "ddr_util",
    "ddr_util_mean",
    "reduce_fu_util",
    "reduce_fu_util_mean",
    "propagate_fu_util",
    "propagate_fu_util_mean",
    "fabric_util",
)

#: Cumulative observation fields the recorder differentiates per quantum.
_DELTA_FIELDS = (
    "messages_drained",
    "coalesced",
    "spilled",
    "prefetch_hits",
    "prefetch_misses",
)


class TimelineRecorder(MetricsRecorder):
    """Ring-buffered per-quantum counters plus whole-run totals.

    The ring holds the last ``capacity`` quanta (wraparound is recorded
    in ``dropped``); the totals -- time and quantum counts per bound
    class and per bottleneck resource, final counter values -- cover the
    whole run regardless.
    """

    enabled = True

    def __init__(
        self, capacity: int = 4096, profiler: Optional[PhaseProfiler] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("timeline capacity must be positive")
        self.capacity = capacity
        self._profiler = profiler
        self._cols: Dict[str, np.ndarray] = {
            name: np.zeros(capacity, dtype=np.int64) for name in _INT_COLUMNS
        }
        self._cols.update(
            {name: np.zeros(capacity, dtype=np.float64) for name in _FLOAT_COLUMNS}
        )
        self._bottleneck = np.zeros(capacity, dtype=np.int8)
        self.quanta_seen = 0
        self.elapsed_seconds = 0.0
        self.class_seconds = {name: 0.0 for name in BOUND_CLASSES}
        self.class_quanta = {name: 0 for name in BOUND_CLASSES}
        self.resource_seconds = {name: 0.0 for name in BOTTLENECK_NAMES}
        self.resource_quanta = {name: 0 for name in BOTTLENECK_NAMES}
        self._prev = {name: 0 for name in _DELTA_FIELDS}
        self._final = {name: 0 for name in _DELTA_FIELDS}

    @property
    def phase_profiler(self) -> Optional[PhaseProfiler]:
        return self._profiler

    def __len__(self) -> int:
        return min(self.quanta_seen, self.capacity)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def on_quantum(self, obs: QuantumObservation) -> None:
        slot = self.quanta_seen % self.capacity
        cols = self._cols
        cols["index"][slot] = obs.index
        cols["duration_seconds"][slot] = obs.duration_seconds
        cols["hbm_util"][slot] = float(obs.hbm_util.max())
        cols["hbm_util_mean"][slot] = float(obs.hbm_util.mean())
        cols["ddr_util"][slot] = float(obs.ddr_util.max())
        cols["ddr_util_mean"][slot] = float(obs.ddr_util.mean())
        cols["reduce_fu_util"][slot] = float(obs.reduce_fu_util.max())
        cols["reduce_fu_util_mean"][slot] = float(obs.reduce_fu_util.mean())
        cols["propagate_fu_util"][slot] = float(obs.propagate_fu_util.max())
        cols["propagate_fu_util_mean"][slot] = float(obs.propagate_fu_util.mean())
        cols["fabric_util"][slot] = obs.fabric_util
        for name in _DELTA_FIELDS:
            value = int(getattr(obs, name))
            cols[name][slot] = value - self._prev[name]
            self._prev[name] = value
            self._final[name] = value
        cols["inbox_backlog"][slot] = obs.inbox_backlog
        cols["buffer_occupancy"][slot] = obs.buffer_occupancy
        cols["tracked_blocks"][slot] = obs.tracked_blocks
        self._bottleneck[slot] = BOTTLENECK_NAMES.index(obs.bottleneck)

        bound = classify_bottleneck(obs.bottleneck)
        self.quanta_seen += 1
        self.elapsed_seconds += obs.duration_seconds
        self.class_seconds[bound] += obs.duration_seconds
        self.class_quanta[bound] += 1
        self.resource_seconds[obs.bottleneck] += obs.duration_seconds
        self.resource_quanta[obs.bottleneck] += 1

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def _window(self) -> np.ndarray:
        """Stored slot indices in chronological order."""
        stored = len(self)
        if self.quanta_seen <= self.capacity:
            return np.arange(stored)
        head = self.quanta_seen % self.capacity
        return np.concatenate(
            [np.arange(head, self.capacity), np.arange(head)]
        )

    def timeline_dict(self) -> Dict[str, object]:
        """The timeline JSON schema (see DESIGN.md, "Observability")."""
        order = self._window()
        codes = self._bottleneck[order]
        columns: Dict[str, List[object]] = {
            name: self._cols[name][order].tolist()
            for name in _INT_COLUMNS + _FLOAT_COLUMNS
        }
        columns["bottleneck"] = [BOTTLENECK_NAMES[c] for c in codes]
        columns["bound"] = [
            classify_bottleneck(BOTTLENECK_NAMES[c]) for c in codes
        ]
        return {
            "schema": TIMELINE_SCHEMA,
            "capacity": self.capacity,
            "quanta": self.quanta_seen,
            "stored": len(self),
            "dropped": max(0, self.quanta_seen - self.capacity),
            "totals": {
                "elapsed_seconds": self.elapsed_seconds,
                "class_seconds": dict(self.class_seconds),
                "class_quanta": dict(self.class_quanta),
                "resource_seconds": dict(self.resource_seconds),
                "resource_quanta": dict(self.resource_quanta),
                "counters": dict(self._final),
            },
            "columns": columns,
        }

    def publish(self, stats) -> None:
        stats.merge(
            {
                "quanta": self.quanta_seen,
                "elapsed_seconds": self.elapsed_seconds,
                "bound_seconds": dict(self.class_seconds),
                "bound_quanta": dict(self.class_quanta),
                "resource_seconds": dict(self.resource_seconds),
                "counters": dict(self._final),
            }
        )
        if self._profiler is not None:
            self._profiler.publish(stats.child("phases"))
