"""Process-wide fault and retry counters.

Sweep execution is a parent-process concern (workers report outcomes
back; the parent classifies, retries, and checkpoints), so its
failure/retry/timeout accounting lives in one thread-safe registry
rather than in the per-run :class:`~repro.obs.recorder.MetricsRecorder`
timeline -- a failed run has no timeline at all.

The shared :data:`FAULT_COUNTERS` registry is incremented by
:class:`~repro.runner.sweep.SweepRunner` under ``sweep.*`` names
(``sweep.failures``, ``sweep.retries``, ``sweep.timeouts``,
``sweep.worker_deaths``, ``sweep.checkpoint_flushes``,
``sweep.cache_errors``) and by the
:class:`~repro.graph.store.GraphStore` under ``graph_store.*`` names
(``graph_store.hits`` / ``misses`` / ``builds`` artifact traffic,
``graph_store.build_ms`` cumulative build milliseconds,
``graph_store.lock_waits`` builders that blocked on a concurrent
build, ``graph_store.evictions`` / ``corrupt`` / ``put_errors``
hygiene), and by the fleet layer under ``fleet.*`` names
(``fleet.registered`` / ``heartbeats`` / ``deregistered`` /
``expired`` / ``dead`` / ``revived`` / ``superseded`` membership,
``fleet.dispatched`` / ``completed`` / ``cache_resolved`` /
``shared_cache_miss`` / ``local_fallback`` dispatch traffic,
``fleet.revoked`` / ``worker_lost`` / ``requeued`` /
``requeue_exhausted`` fault recovery, ``fleet.quota_rejected`` /
``rate_limited`` admission), surfacing in ``repro sweep`` / ``repro
profile`` output and the service's ``/metrics`` endpoint;
:meth:`CounterRegistry.publish` mirrors a snapshot into a
:class:`~repro.sim.stats.StatGroup` for callers that aggregate stats.

:class:`MetricsRegistry` extends the counter bag with **gauges**
(last-write-wins floats: ``service.queue_depth``,
``service.running_jobs``, ``fleet.workers_alive``) and **histograms**
(fixed log-scale buckets over seconds: ``service.queue_wait_seconds``,
``service.run_seconds``, ``fleet.dispatch_rtt_seconds``,
``fleet.heartbeat_age_seconds``, ``fleet.ring_rebuild_seconds``,
``sweep.run_seconds``, ``graph_store.build_seconds``), all behind the
same lock discipline.  :data:`FAULT_COUNTERS` *is* a
``MetricsRegistry``, so every existing ``increment`` call site keeps
working and the service's ``/metrics`` endpoint (JSON and Prometheus
exposition) reads one registry.
"""

from __future__ import annotations

import bisect
import math
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def render_counts(counts: Dict[str, int], prefix: str = "fault counters") -> str:
    """One-line rendering of a counter snapshot or delta."""
    if not counts:
        return f"{prefix}: none recorded"
    body = " ".join(f"{name}={value}" for name, value in sorted(counts.items()))
    return f"{prefix}: {body}"


class CounterRegistry:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` and return the new value."""
        with self._lock:
            value = self._counts.get(name, 0) + int(amount)
            self._counts[name] = value
            return value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since ``snapshot`` (zero deltas omitted).

        The registry is process-wide and never reset by sweeps, so
        per-sweep accounting snapshots it up front and reads the delta
        afterwards -- consecutive sweeps in one process then report
        their own counts, not the cumulative ones.
        """
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            delta = value - snapshot.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def publish(self, stats) -> None:
        """Mirror the current counters into a :class:`StatGroup`."""
        stats.merge(self.snapshot())

    def render(self, prefix: str = "fault counters") -> str:
        return render_counts(self.snapshot(), prefix)


#: Half-decade log-scale bucket upper bounds in seconds: 100us, ~316us,
#: 1ms, ... up to ~316s, plus an implicit +Inf overflow bucket.  One
#: fixed ladder for every latency histogram keeps Prometheus exposition
#: and cross-family comparison trivial.
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    round(1e-4 * 10 ** (i / 2), 10) for i in range(13)
)

#: Histogram families pre-declared on the process-wide registry, so
#: the exposition endpoint always advertises them (with zero counts)
#: even before the first observation.
DEFAULT_HISTOGRAMS: Tuple[str, ...] = (
    "service.queue_wait_seconds",
    "service.run_seconds",
    "fleet.dispatch_rtt_seconds",
    "fleet.heartbeat_age_seconds",
    "fleet.ring_rebuild_seconds",
    "sweep.run_seconds",
    "graph_store.build_seconds",
    "stream.delta_apply_seconds",
    "stream.compact_seconds",
    "stream.query_seconds",
)


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    Not thread-safe by itself -- :class:`MetricsRegistry` serializes
    access under its lock.  ``bounds`` are the finite upper edges; an
    overflow (+Inf) bucket is implicit at the end.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, float(value))] += 1
        self.count += 1
        self.sum += float(value)

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly cumulative view: ``[[le, cumulative], ...]``.

        The final entry's ``le`` is the string ``"+Inf"`` and its
        cumulative count equals ``count``, matching the Prometheus
        histogram contract.
        """
        cumulative = 0
        buckets: List[List[object]] = []
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", self.count])
        return {"count": self.count, "sum": self.sum, "buckets": buckets}


def histogram_quantile(snapshot: Dict[str, object], q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from a :meth:`Histogram.snapshot`.

    Linear interpolation within the containing bucket (Prometheus'
    ``histogram_quantile`` convention); the overflow bucket clamps to
    its lower edge.  ``None`` when the histogram is empty.
    """
    count = int(snapshot.get("count", 0))
    buckets = snapshot.get("buckets") or []
    if count <= 0 or not buckets:
        return None
    q = min(max(float(q), 0.0), 1.0)
    rank = q * count
    prev_bound, prev_cum = 0.0, 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            if bound == "+Inf":
                return float(prev_bound)
            width = float(bound) - prev_bound
            in_bucket = cumulative - prev_cum
            if in_bucket <= 0 or width <= 0:
                return float(bound)
            frac = (rank - prev_cum) / in_bucket
            return prev_bound + width * min(max(frac, 0.0), 1.0)
        if bound != "+Inf":
            prev_bound, prev_cum = float(bound), int(cumulative)
    return float(prev_bound)


class MetricsRegistry(CounterRegistry):
    """Counters plus last-write-wins gauges and fixed-bucket histograms.

    Same near-zero-cost discipline as the tracing layer's disabled
    path: one lock acquisition, a dict lookup, and O(log buckets) per
    observation -- cheap enough for per-job seams, and never called
    from the per-quantum hot path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # Gauges ----------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        with self._lock:
            self._gauges[name] = value

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    # Histograms ------------------------------------------------------
    def declare_histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        """Register an (empty) histogram family ahead of observations."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(bounds)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name`` (auto-declared)."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    @contextmanager
    def time_histogram(self, name: str) -> Iterator[None]:
        """Observe the body's wall duration (seconds) into ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def histograms(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                name: hist.snapshot()
                for name, hist in self._histograms.items()
            }

    def quantile(self, name: str, q: float) -> Optional[float]:
        with self._lock:
            hist = self._histograms.get(name)
            snap = hist.snapshot() if hist is not None else None
        return histogram_quantile(snap, q) if snap is not None else None

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._gauges.clear()
            # Declared families survive a reset (zeroed, not dropped),
            # so exposition keeps advertising them.
            self._histograms = {
                name: Histogram(hist.bounds)
                for name, hist in self._histograms.items()
            }


#: The process-wide registry sweeps report into.
FAULT_COUNTERS = MetricsRegistry()
for _name in DEFAULT_HISTOGRAMS:
    FAULT_COUNTERS.declare_histogram(_name)
del _name
