"""Process-wide fault and retry counters.

Sweep execution is a parent-process concern (workers report outcomes
back; the parent classifies, retries, and checkpoints), so its
failure/retry/timeout accounting lives in one thread-safe registry
rather than in the per-run :class:`~repro.obs.recorder.MetricsRecorder`
timeline -- a failed run has no timeline at all.

The shared :data:`FAULT_COUNTERS` registry is incremented by
:class:`~repro.runner.sweep.SweepRunner` under ``sweep.*`` names
(``sweep.failures``, ``sweep.retries``, ``sweep.timeouts``,
``sweep.worker_deaths``, ``sweep.checkpoint_flushes``,
``sweep.cache_errors``) and by the
:class:`~repro.graph.store.GraphStore` under ``graph_store.*`` names
(``graph_store.hits`` / ``misses`` / ``builds`` artifact traffic,
``graph_store.build_ms`` cumulative build milliseconds,
``graph_store.lock_waits`` builders that blocked on a concurrent
build, ``graph_store.evictions`` / ``corrupt`` / ``put_errors``
hygiene), and by the fleet layer under ``fleet.*`` names
(``fleet.registered`` / ``heartbeats`` / ``deregistered`` /
``expired`` / ``dead`` / ``revived`` / ``superseded`` membership,
``fleet.dispatched`` / ``completed`` / ``cache_resolved`` /
``shared_cache_miss`` / ``local_fallback`` dispatch traffic,
``fleet.revoked`` / ``worker_lost`` / ``requeued`` /
``requeue_exhausted`` fault recovery, ``fleet.quota_rejected`` /
``rate_limited`` admission), surfacing in ``repro sweep`` / ``repro
profile`` output and the service's ``/metrics`` endpoint;
:meth:`CounterRegistry.publish` mirrors a snapshot into a
:class:`~repro.sim.stats.StatGroup` for callers that aggregate stats.
"""

from __future__ import annotations

import threading
from typing import Dict


def render_counts(counts: Dict[str, int], prefix: str = "fault counters") -> str:
    """One-line rendering of a counter snapshot or delta."""
    if not counts:
        return f"{prefix}: none recorded"
    body = " ".join(f"{name}={value}" for name, value in sorted(counts.items()))
    return f"{prefix}: {body}"


class CounterRegistry:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to ``name`` and return the new value."""
        with self._lock:
            value = self._counts.get(name, 0) + int(amount)
            self._counts[name] = value
            return value

    def get(self, name: str) -> int:
        with self._lock:
            return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counts)

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counts accumulated since ``snapshot`` (zero deltas omitted).

        The registry is process-wide and never reset by sweeps, so
        per-sweep accounting snapshots it up front and reads the delta
        afterwards -- consecutive sweeps in one process then report
        their own counts, not the cumulative ones.
        """
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            delta = value - snapshot.get(name, 0)
            if delta:
                out[name] = delta
        return out

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()

    def publish(self, stats) -> None:
        """Mirror the current counters into a :class:`StatGroup`."""
        stats.merge(self.snapshot())

    def render(self, prefix: str = "fault counters") -> str:
        return render_counts(self.snapshot(), prefix)


#: The process-wide registry sweeps report into.
FAULT_COUNTERS = CounterRegistry()
