"""Perf-regression tracking over the committed benchmark results.

``benchmarks/perf_smoke.py`` measures the hot path every run, but a
single measurement only gates against its immediate predecessor.
:class:`BenchHistory` keeps the trajectory: an append-only JSONL file
(one git-SHA-stamped record per benchmark invocation) whose
rolling-median baseline absorbs one-off machine noise, plus
threshold-based :class:`RegressionVerdict` checks that turn "this build
is slower" into a failing exit code with a rendered diff
(``perf_smoke.py --against <history>`` and the CI workflow).

Metric direction is inferred from the name: metrics containing
``overhead`` are lower-is-better and regress on an *absolute* increase
past the threshold (overheads hover near zero, so ratios are
meaningless); everything else (throughput, speedup) is higher-is-better
and regresses on a *relative* drop past the threshold.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError

#: History record format version.
HISTORY_SCHEMA = 1

#: Default file name inside a results directory.
HISTORY_BASENAME = "BENCH_history.jsonl"

#: Rolling-median window (records per metric).
DEFAULT_WINDOW = 5

#: Regression threshold: 10% relative drop / 10-point absolute rise.
DEFAULT_THRESHOLD = 0.10


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The repo HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            stderr=subprocess.DEVNULL,
        )
        return out.decode().strip() or "unknown"
    except Exception:
        return "unknown"


def lower_is_better(metric: str) -> bool:
    return "overhead" in metric


@dataclass
class RegressionVerdict:
    """One metric's comparison against its rolling-median baseline."""

    metric: str
    current: float
    baseline: float
    delta: float  # relative (higher-better) or absolute (lower-better)
    threshold: float
    regressed: bool
    samples: int
    mode: str  # "relative" | "absolute"

    def describe(self) -> str:
        status = "REGRESSED" if self.regressed else "ok"
        if self.mode == "relative":
            change = f"{self.delta:+.1%}"
            limit = f"-{self.threshold:.0%}"
        else:
            change = f"{self.delta:+.3f}"
            limit = f"+{self.threshold:.2f}"
        return (
            f"{self.metric}: {self.current:.4g} vs median {self.baseline:.4g}"
            f" over {self.samples} record(s) ({change}, limit {limit})"
            f"  [{status}]"
        )


class BenchHistory:
    """Append-only, git-SHA-stamped benchmark history with baselines."""

    def __init__(
        self,
        path: str,
        window: int = DEFAULT_WINDOW,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        if window < 1:
            raise ConfigError("history window must be at least 1")
        if not 0 < threshold < 1:
            raise ConfigError("regression threshold must be in (0, 1)")
        self.path = path
        self.window = window
        self.threshold = threshold

    @classmethod
    def at(cls, path: str, **kwargs) -> "BenchHistory":
        """History at ``path``; a directory resolves to its default file."""
        if os.path.isdir(path) or path.endswith(os.sep):
            path = os.path.join(path, HISTORY_BASENAME)
        return cls(path, **kwargs)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------

    def records(self) -> List[Dict]:
        """Every parseable history record, oldest first."""
        out: List[Dict] = []
        try:
            with open(self.path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a hard kill
                    if (
                        isinstance(record, dict)
                        and record.get("schema") == HISTORY_SCHEMA
                        and isinstance(record.get("metrics"), dict)
                    ):
                        out.append(record)
        except OSError:
            pass
        return out

    def append(
        self,
        metrics: Dict[str, float],
        sha: Optional[str] = None,
        extra: Optional[Dict[str, object]] = None,
    ) -> Dict:
        """Stamp and append one record (idempotent per sha + metrics).

        Re-running the same benchmark at the same commit with identical
        numbers (e.g. repeated ``--check-only`` CI builds reading the
        committed result files) appends nothing.
        """
        record: Dict[str, object] = {
            "schema": HISTORY_SCHEMA,
            "sha": sha if sha is not None else current_git_sha(),
            "ts": time.time(),
            "metrics": {name: float(v) for name, v in sorted(metrics.items())},
        }
        if extra:
            record.update(extra)
        existing = self.records()
        if existing:
            last = existing[-1]
            if (
                last.get("sha") == record["sha"]
                and last.get("metrics") == record["metrics"]
            ):
                return last
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
        return record

    # ------------------------------------------------------------------
    # Baselines and verdicts
    # ------------------------------------------------------------------

    def baseline(self, metric: str) -> Tuple[Optional[float], int]:
        """Rolling median of the metric's last ``window`` records."""
        values = [
            record["metrics"][metric]
            for record in self.records()
            if metric in record["metrics"]
        ][-self.window:]
        if not values:
            return None, 0
        return statistics.median(values), len(values)

    def check(self, metrics: Dict[str, float]) -> List[RegressionVerdict]:
        """Compare current metrics against their baselines.

        Metrics with no history yet are skipped (nothing to regress
        against); record them with :meth:`append` to seed the baseline.
        """
        verdicts: List[RegressionVerdict] = []
        for metric in sorted(metrics):
            current = float(metrics[metric])
            base, samples = self.baseline(metric)
            if base is None:
                continue
            if lower_is_better(metric):
                delta = current - base
                verdicts.append(
                    RegressionVerdict(
                        metric=metric,
                        current=current,
                        baseline=base,
                        delta=delta,
                        threshold=self.threshold,
                        regressed=delta > self.threshold,
                        samples=samples,
                        mode="absolute",
                    )
                )
            else:
                if base <= 0:
                    continue
                delta = current / base - 1.0
                verdicts.append(
                    RegressionVerdict(
                        metric=metric,
                        current=current,
                        baseline=base,
                        delta=delta,
                        threshold=self.threshold,
                        regressed=delta < -self.threshold,
                        samples=samples,
                        mode="relative",
                    )
                )
        return verdicts

    def render(self, verdicts: List[RegressionVerdict]) -> str:
        """Human-readable diff of current metrics vs baselines."""
        if not verdicts:
            return (
                "bench history: no baselines yet "
                f"({self.path}); current metrics recorded ungated"
            )
        regressed = sum(1 for v in verdicts if v.regressed)
        lines = [
            f"bench history vs rolling median (window {self.window}, "
            f"threshold {self.threshold:.0%}): "
            f"{len(verdicts)} metric(s), {regressed} regressed"
        ]
        for verdict in verdicts:
            lines.append("  " + verdict.describe())
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Metric extraction from the committed BENCH_*.json files
# ----------------------------------------------------------------------


def metrics_from_reports(
    hotpath_cases: Dict[str, Dict],
    obs_cases: Optional[Dict[str, Dict]] = None,
    store_metrics: Optional[Dict[str, float]] = None,
    batch_metrics: Optional[Dict[str, float]] = None,
    registry_metrics: Optional[Dict[str, float]] = None,
    stream_metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, float]:
    """Flatten perf_smoke's per-case reports into named history metrics."""
    out: Dict[str, float] = {}
    for case, entry in (hotpath_cases or {}).items():
        qps = entry.get("vectorized_quanta_per_sec")
        if qps:
            out[f"hotpath.{case}.vectorized_quanta_per_sec"] = float(qps)
        speedup = entry.get("speedup")
        if speedup:
            out[f"hotpath.{case}.speedup"] = float(speedup)
    for case, entry in (obs_cases or {}).items():
        overhead = entry.get("null_overhead_vs_baseline")
        if overhead is not None:
            out[f"obs.{case}.null_overhead"] = float(overhead)
    for name, value in (store_metrics or {}).items():
        # Already speedups (higher is better): map-vs-rebuild and the
        # cold-vs-warm sweep wall clock from BENCH_graph_store.json.
        out[f"graph_store.{name}"] = float(value)
    for name, value in (batch_metrics or {}).items():
        # Batched-vs-unbatched sweep speedups from BENCH_batch.json.
        out[f"batch.{name}"] = float(value)
    for name, value in (registry_metrics or {}).items():
        # MetricsRegistry seam cost from BENCH_obs.json; "overhead" in
        # the name makes these lower-is-better with an absolute gate.
        out[f"obs.metrics_registry.{name}"] = float(value)
    for name, value in (stream_metrics or {}).items():
        # Incremental-vs-cold speedups from BENCH_stream.json.
        out[f"stream.{name}"] = float(value)
    return out


def metrics_from_bench_dir(results_dir: str) -> Dict[str, float]:
    """History metrics from a ``benchmarks/results`` directory."""
    def _load(basename: str, key: str) -> Dict[str, Dict]:
        path = os.path.join(results_dir, basename)
        try:
            with open(path, encoding="utf-8") as f:
                return json.load(f).get(key, {})
        except (OSError, json.JSONDecodeError):
            return {}

    return metrics_from_reports(
        _load("BENCH_hotpath.json", "cases"),
        _load("BENCH_obs.json", "cases"),
        _load("BENCH_graph_store.json", "metrics"),
        _load("BENCH_batch.json", "metrics"),
        _load("BENCH_obs.json", "metrics_registry").get("metrics", {}),
        _load("BENCH_stream.json", "metrics"),
    )
