"""Cross-run aggregation: sweep-level bottleneck and outlier reports.

A sweep produces one :class:`~repro.core.metrics.RunResult` per
(workload, graph, PE count, source) cell; this module joins them back
into one picture.  :class:`SweepReport` groups :class:`ReportEntry`
rows over configurable spec dimensions, aggregates per-group throughput
statistics and -- when runs were instrumented with a timeline --
per-group bottleneck-class and resource shares via
:class:`~repro.obs.profile.BottleneckReport`, and flags anomalous runs:
a run whose throughput sits beyond a configurable z-threshold from its
group, or whose dominant bottleneck class disagrees with the group's
clear majority.

The export is deliberately deterministic: entries are sorted, the JSON
is ``sort_keys`` + schema-versioned (:data:`REPORT_SCHEMA`), and no
wall-clock timestamps are embedded -- the same run cache always renders
byte-identical JSON and markdown, so reports diff cleanly across
commits.  ``repro report`` builds entries straight from the run cache
(see :func:`repro.cli._cmd_report`).
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.profile import BottleneckReport
from repro.obs.recorder import BOTTLENECK_NAMES, BOUND_CLASSES

#: Report export format version (bump on any shape change).
REPORT_SCHEMA = 1

#: Spec dimensions a report may group over.
GROUPABLE_DIMS = ("workload", "graph", "gpns", "source")

DEFAULT_GROUP_BY = ("workload", "graph", "gpns")
DEFAULT_Z_THRESHOLD = 3.0

#: Smallest group that supports a z-score (std of 2 points is meaningless).
MIN_GROUP_FOR_Z = 3

#: Per-run metrics screened for z-score divergence.
_Z_METRICS = ("gteps", "edges_per_quantum")


@dataclass
class ReportEntry:
    """One sweep slot joined with its cached result (if any).

    ``status`` is ``"ok"`` (result loaded), ``"failed"`` (the sweep
    recorded a :class:`~repro.runner.fault.RunFailure`), or
    ``"missing"`` (never computed / evicted).  ``report`` carries the
    run's :class:`BottleneckReport` when it was instrumented with a
    timeline; uninstrumented runs aggregate throughput only.
    """

    key: str
    workload: str
    graph: str
    gpns: int
    source: Optional[int] = None
    pes: Optional[int] = None
    status: str = "missing"
    failure_kind: Optional[str] = None
    gteps: Optional[float] = None
    elapsed_seconds: Optional[float] = None
    quanta: Optional[int] = None
    edges_per_quantum: Optional[float] = None
    report: Optional[BottleneckReport] = None


def entry_from_result(
    key: str,
    workload: str,
    graph: str,
    gpns: int,
    source: Optional[int],
    result: object,
    pes: Optional[int] = None,
) -> ReportEntry:
    """Join one sweep slot with whatever the cache / sweep returned.

    ``result`` may be a :class:`~repro.core.metrics.RunResult`, a
    :class:`~repro.runner.fault.RunFailure` (recognized by its ``kind``
    attribute, duck-typed so :mod:`repro.obs` never imports
    :mod:`repro.runner`), or ``None`` for a missing run.
    """
    entry = ReportEntry(
        key=key, workload=workload, graph=graph, gpns=int(gpns),
        source=source, pes=pes,
    )
    if result is None:
        return entry
    kind = getattr(result, "kind", None)
    if kind is not None and not hasattr(result, "elapsed_seconds"):
        entry.status = "failed"
        entry.failure_kind = str(kind)
        return entry
    entry.status = "ok"
    entry.gteps = float(result.gteps)
    entry.elapsed_seconds = float(result.elapsed_seconds)
    entry.quanta = int(result.quanta)
    entry.edges_per_quantum = (
        result.edges_traversed / result.quanta if result.quanta else 0.0
    )
    timeline = getattr(result, "timeline", None)
    if timeline is not None:
        entry.report = BottleneckReport.from_timeline(timeline)
    return entry


def _summary(values: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": statistics.fmean(values),
        "std": statistics.pstdev(values) if len(values) > 1 else 0.0,
        "min": min(values),
        "max": max(values),
    }


def _modal(counts: Dict[str, int], order: Sequence[str]) -> Optional[str]:
    """Highest-count name, breaking ties by the canonical order."""
    present = [name for name in order if counts.get(name, 0) > 0]
    if not present:
        return None
    return max(present, key=lambda name: (counts[name], -order.index(name)))


class SweepReport:
    """Aggregate one sweep's entries into groups, shares, and outliers."""

    def __init__(
        self,
        entries: Sequence[ReportEntry],
        group_by: Sequence[str] = DEFAULT_GROUP_BY,
        z_threshold: float = DEFAULT_Z_THRESHOLD,
    ) -> None:
        group_by = tuple(group_by)
        for dim in group_by:
            if dim not in GROUPABLE_DIMS:
                raise ConfigError(
                    f"cannot group by {dim!r}; choose from "
                    f"{', '.join(GROUPABLE_DIMS)}"
                )
        if not group_by:
            raise ConfigError("group_by needs at least one dimension")
        if z_threshold <= 0:
            raise ConfigError("z_threshold must be positive")
        self.group_by = group_by
        self.z_threshold = float(z_threshold)
        # Deterministic entry order: dimension tuple, then key.
        self.entries = sorted(
            entries,
            key=lambda e: (
                e.workload, e.graph, e.gpns,
                (0, e.source) if e.source is not None else (-1, 0),
                e.key,
            ),
        )
        self._groups: Dict[Tuple, List[ReportEntry]] = {}
        for entry in self.entries:
            self._groups.setdefault(self._group_key(entry), []).append(entry)

    def _group_key(self, entry: ReportEntry) -> Tuple:
        return tuple(getattr(entry, dim) for dim in self.group_by)

    def _group_label(self, key: Tuple) -> str:
        return ", ".join(
            f"{dim}={value}" for dim, value in zip(self.group_by, key)
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _group_cell(self, key: Tuple, members: List[ReportEntry]) -> Dict:
        ok = [e for e in members if e.status == "ok"]
        cell: Dict[str, object] = {
            "key": dict(zip(self.group_by, key)),
            "runs": len(members),
            "ok": len(ok),
            "failed": sum(1 for e in members if e.status == "failed"),
            "missing": sum(1 for e in members if e.status == "missing"),
        }
        pes = sorted({e.pes for e in members if e.pes is not None})
        if len(pes) == 1:
            cell["pes"] = pes[0]
        if ok:
            cell["gteps"] = _summary([e.gteps for e in ok])
            cell["edges_per_quantum"] = _summary(
                [e.edges_per_quantum for e in ok]
            )
            cell["elapsed_seconds_mean"] = statistics.fmean(
                [e.elapsed_seconds for e in ok]
            )
            cell["quanta_total"] = sum(e.quanta for e in ok)
        cell["bottleneck"] = self._bottleneck_cell(ok)
        return cell

    @staticmethod
    def _bottleneck_cell(ok: List[ReportEntry]) -> Optional[Dict]:
        reports = [e.report for e in ok if e.report is not None]
        if not reports:
            return None
        class_seconds = {name: 0.0 for name in BOUND_CLASSES}
        resource_seconds = {name: 0.0 for name in BOTTLENECK_NAMES}
        dominant_counts: Dict[str, int] = {}
        total = 0.0
        for report in reports:
            total += report.elapsed_seconds
            for name in BOUND_CLASSES:
                class_seconds[name] += report.class_seconds.get(name, 0.0)
            for name in BOTTLENECK_NAMES:
                resource_seconds[name] += report.resource_seconds.get(
                    name, 0.0
                )
            dom = report.dominant_class
            dominant_counts[dom] = dominant_counts.get(dom, 0) + 1
        if total > 0:
            class_shares = {
                name: class_seconds[name] / total for name in BOUND_CLASSES
            }
            resource_shares = {
                name: resource_seconds[name] / total
                for name in BOTTLENECK_NAMES
            }
        else:
            class_shares = {name: 0.0 for name in BOUND_CLASSES}
            resource_shares = {name: 0.0 for name in BOTTLENECK_NAMES}
        return {
            "timelines": len(reports),
            "class_shares": class_shares,
            "resource_shares": resource_shares,
            "dominant_class": _modal(dominant_counts, BOUND_CLASSES),
            "dominant_resource": (
                max(
                    BOTTLENECK_NAMES,
                    key=lambda n: (
                        resource_seconds[n],
                        -BOTTLENECK_NAMES.index(n),
                    ),
                )
                if total > 0
                else None
            ),
            "dominant_class_counts": {
                name: dominant_counts[name]
                for name in BOUND_CLASSES
                if name in dominant_counts
            },
        }

    def outliers(self) -> List[Dict]:
        """Runs diverging from their group (z-score or dominant class).

        Z-screening needs at least :data:`MIN_GROUP_FOR_Z` ok runs and a
        nonzero spread; dominant-class screening needs a clear majority
        class (> half the instrumented runs) to diverge from.
        """
        found: List[Dict] = []
        for key, members in self._groups.items():
            ok = [e for e in members if e.status == "ok"]
            group = dict(zip(self.group_by, key))
            for metric in _Z_METRICS:
                values = [getattr(e, metric) for e in ok]
                if len(values) < MIN_GROUP_FOR_Z:
                    continue
                mean = statistics.fmean(values)
                std = statistics.pstdev(values)
                if std <= 0:
                    continue
                for entry, value in zip(ok, values):
                    z = (value - mean) / std
                    if abs(z) > self.z_threshold:
                        found.append(
                            {
                                "group": group,
                                "key": entry.key,
                                "source": entry.source,
                                "metric": metric,
                                "value": value,
                                "group_mean": mean,
                                "group_std": std,
                                "z": z,
                                "reason": (
                                    f"{metric} z={z:+.2f} beyond "
                                    f"±{self.z_threshold:g}"
                                ),
                            }
                        )
            instrumented = [
                e for e in ok
                if e.report is not None and e.report.quanta > 0
            ]
            if len(instrumented) >= 2:
                counts: Dict[str, int] = {}
                for entry in instrumented:
                    dom = entry.report.dominant_class
                    counts[dom] = counts.get(dom, 0) + 1
                modal = _modal(counts, BOUND_CLASSES)
                if modal is not None and counts[modal] * 2 > len(instrumented):
                    for entry in instrumented:
                        dom = entry.report.dominant_class
                        if dom != modal:
                            found.append(
                                {
                                    "group": group,
                                    "key": entry.key,
                                    "source": entry.source,
                                    "metric": "dominant_class",
                                    "value": dom,
                                    "expected": modal,
                                    "reason": (
                                        f"dominant class {dom} vs group "
                                        f"majority {modal}"
                                    ),
                                }
                            )
        found.sort(
            key=lambda o: (
                str(sorted(o["group"].items())), o["metric"], o["key"]
            )
        )
        return found

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        with_timeline = sum(
            1 for e in self.entries if e.report is not None
        )
        return {
            "schema": REPORT_SCHEMA,
            "group_by": list(self.group_by),
            "z_threshold": self.z_threshold,
            "totals": {
                "runs": len(self.entries),
                "ok": sum(1 for e in self.entries if e.status == "ok"),
                "failed": sum(
                    1 for e in self.entries if e.status == "failed"
                ),
                "missing": sum(
                    1 for e in self.entries if e.status == "missing"
                ),
                "groups": len(self._groups),
                "with_timeline": with_timeline,
            },
            "groups": [
                self._group_cell(key, members)
                for key, members in self._groups.items()
            ],
            "outliers": self.outliers(),
        }

    def to_json(self) -> str:
        """Byte-stable JSON export (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render_markdown(self) -> str:
        data = self.to_dict()
        totals = data["totals"]
        lines = [
            "# Sweep report",
            "",
            f"- runs: {totals['runs']} ({totals['ok']} ok, "
            f"{totals['failed']} failed, {totals['missing']} missing) in "
            f"{totals['groups']} groups",
            f"- timelines joined: {totals['with_timeline']}",
            f"- group-by: {', '.join(data['group_by'])}; "
            f"outlier z-threshold: {data['z_threshold']:g}",
            "",
            "## Groups",
            "",
            "| group | runs | ok | GTEPS mean | GTEPS std | mean time (ms)"
            " | dominant |",
            "|---|---|---|---|---|---|---|",
        ]
        for cell in data["groups"]:
            label = ", ".join(
                f"{dim}={cell['key'][dim]}" for dim in data["group_by"]
            )
            gteps = cell.get("gteps")
            bottleneck = cell.get("bottleneck")
            if bottleneck and bottleneck["dominant_class"]:
                dominant = (
                    f"{bottleneck['dominant_class']} "
                    f"({bottleneck['dominant_resource']})"
                )
            else:
                dominant = "-"
            lines.append(
                "| {label} | {runs} | {ok} | {mean} | {std} | {ms} | "
                "{dom} |".format(
                    label=label,
                    runs=cell["runs"],
                    ok=cell["ok"],
                    mean=f"{gteps['mean']:.3f}" if gteps else "-",
                    std=f"{gteps['std']:.3f}" if gteps else "-",
                    ms=(
                        f"{cell['elapsed_seconds_mean'] * 1e3:.4f}"
                        if "elapsed_seconds_mean" in cell
                        else "-"
                    ),
                    dom=dominant,
                )
            )
        shared = [
            cell for cell in data["groups"] if cell.get("bottleneck")
        ]
        if shared:
            lines += [
                "",
                "## Bottleneck shares",
                "",
                "| group | bandwidth | compute | queue | timelines |",
                "|---|---|---|---|---|",
            ]
            for cell in shared:
                label = ", ".join(
                    f"{dim}={cell['key'][dim]}" for dim in data["group_by"]
                )
                shares = cell["bottleneck"]["class_shares"]
                lines.append(
                    f"| {label} | {shares['bandwidth']:.1%} | "
                    f"{shares['compute']:.1%} | {shares['queue']:.1%} | "
                    f"{cell['bottleneck']['timelines']} |"
                )
        lines += ["", "## Outliers", ""]
        if data["outliers"]:
            for outlier in data["outliers"]:
                label = ", ".join(
                    f"{dim}={outlier['group'][dim]}"
                    for dim in data["group_by"]
                )
                source = (
                    "-" if outlier.get("source") is None
                    else outlier["source"]
                )
                detail = outlier["reason"]
                if "value" in outlier and "group_mean" in outlier:
                    detail += (
                        f" ({outlier['value']:.4g} vs group mean "
                        f"{outlier['group_mean']:.4g})"
                    )
                lines.append(
                    f"- `{label}` source={source}: {detail}"
                )
        else:
            lines.append("none detected")
        lines.append("")
        return "\n".join(lines)
