"""Quantum-level observability: metrics recorders, tracing, profiling.

The engines in :mod:`repro.core` expose one hook per quantum through the
:class:`~repro.obs.recorder.MetricsRecorder` protocol.  The default
:class:`~repro.obs.recorder.NullRecorder` costs one branch per quantum;
:class:`~repro.obs.recorder.TimelineRecorder` keeps a ring buffer of
per-quantum counters and utilizations;
:class:`~repro.obs.recorder.PhaseProfiler` samples wall-time per engine
phase.  :mod:`repro.obs.tracing` adds env-gated structured span tracing
(``REPRO_TRACE``), :mod:`repro.obs.counters` keeps the process-wide
fault/retry counters sweeps report into (:data:`FAULT_COUNTERS`), and
:mod:`repro.obs.profile` turns a recorded timeline into a
bottleneck-attribution report (the ``repro profile`` CLI subcommand).

On top of the per-run layer, :mod:`repro.obs.report` aggregates a whole
sweep's results into grouped bottleneck/outlier reports (the ``repro
report`` CLI subcommand) and :mod:`repro.obs.bench_history` tracks the
benchmark trajectory across commits with rolling-median regression
verdicts (``benchmarks/perf_smoke.py --against``).

The distributed layer: :mod:`repro.obs.trace_context` propagates
W3C-traceparent-shaped trace/span ids across threads, forks, HTTP
hops, and subprocess environments; :mod:`repro.obs.stitch` joins the
resulting JSONL spans back into one tree (``repro trace``);
:class:`~repro.obs.counters.MetricsRegistry` adds gauges and
log-bucketed histograms next to the counters; and
:mod:`repro.obs.prom` renders/validates the Prometheus text
exposition the service serves on ``GET /metrics?format=prom``.
"""

from repro.obs.bench_history import BenchHistory, RegressionVerdict
from repro.obs.config import ObsConfig, make_recorder
from repro.obs.counters import (
    DEFAULT_BUCKETS,
    DEFAULT_HISTOGRAMS,
    FAULT_COUNTERS,
    CounterRegistry,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    render_counts,
)
from repro.obs.profile import BottleneckReport
from repro.obs.prom import render_prometheus, validate_exposition
from repro.obs.recorder import (
    MetricsRecorder,
    NullRecorder,
    PhaseProfiler,
    QuantumObservation,
    TimelineRecorder,
)
from repro.obs.report import ReportEntry, SweepReport, entry_from_result
from repro.obs.trace_context import TraceContext
from repro.obs.tracing import trace_enabled, trace_event, trace_span

__all__ = [
    "ObsConfig",
    "make_recorder",
    "BenchHistory",
    "BottleneckReport",
    "CounterRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_HISTOGRAMS",
    "FAULT_COUNTERS",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NullRecorder",
    "PhaseProfiler",
    "QuantumObservation",
    "RegressionVerdict",
    "ReportEntry",
    "SweepReport",
    "TimelineRecorder",
    "TraceContext",
    "entry_from_result",
    "histogram_quantile",
    "render_counts",
    "render_prometheus",
    "trace_enabled",
    "trace_event",
    "trace_span",
    "validate_exposition",
]
