"""Quantum-level observability: metrics recorders, tracing, profiling.

The engines in :mod:`repro.core` expose one hook per quantum through the
:class:`~repro.obs.recorder.MetricsRecorder` protocol.  The default
:class:`~repro.obs.recorder.NullRecorder` costs one branch per quantum;
:class:`~repro.obs.recorder.TimelineRecorder` keeps a ring buffer of
per-quantum counters and utilizations;
:class:`~repro.obs.recorder.PhaseProfiler` samples wall-time per engine
phase.  :mod:`repro.obs.tracing` adds env-gated structured span tracing
(``REPRO_TRACE``), :mod:`repro.obs.counters` keeps the process-wide
fault/retry counters sweeps report into (:data:`FAULT_COUNTERS`), and
:mod:`repro.obs.profile` turns a recorded timeline into a
bottleneck-attribution report (the ``repro profile`` CLI subcommand).

On top of the per-run layer, :mod:`repro.obs.report` aggregates a whole
sweep's results into grouped bottleneck/outlier reports (the ``repro
report`` CLI subcommand) and :mod:`repro.obs.bench_history` tracks the
benchmark trajectory across commits with rolling-median regression
verdicts (``benchmarks/perf_smoke.py --against``).
"""

from repro.obs.bench_history import BenchHistory, RegressionVerdict
from repro.obs.config import ObsConfig, make_recorder
from repro.obs.counters import FAULT_COUNTERS, CounterRegistry, render_counts
from repro.obs.profile import BottleneckReport
from repro.obs.recorder import (
    MetricsRecorder,
    NullRecorder,
    PhaseProfiler,
    QuantumObservation,
    TimelineRecorder,
)
from repro.obs.report import ReportEntry, SweepReport, entry_from_result
from repro.obs.tracing import trace_enabled, trace_event, trace_span

__all__ = [
    "ObsConfig",
    "make_recorder",
    "BenchHistory",
    "BottleneckReport",
    "CounterRegistry",
    "FAULT_COUNTERS",
    "MetricsRecorder",
    "NullRecorder",
    "PhaseProfiler",
    "QuantumObservation",
    "RegressionVerdict",
    "ReportEntry",
    "SweepReport",
    "TimelineRecorder",
    "entry_from_result",
    "render_counts",
    "trace_enabled",
    "trace_event",
    "trace_span",
]
