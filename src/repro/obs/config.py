"""Declarative observability configuration.

:class:`ObsConfig` is the *recipe* for a recorder -- plain frozen data,
so it can ride inside a :class:`~repro.runner.spec.RunSpec`, be pickled
to sweep workers, and be digested into run-cache keys (a cached
un-instrumented run must never satisfy a profiled request; see
:func:`repro.runner.cache.spec_key`).  :func:`make_recorder` turns the
recipe into the matching stateful recorder, one per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.obs.recorder import MetricsRecorder, PhaseProfiler, TimelineRecorder


@dataclass(frozen=True)
class ObsConfig:
    """What to record during a run.

    ``timeline`` enables the per-quantum :class:`TimelineRecorder`
    (ring of ``timeline_capacity`` quanta, exported on the run's
    ``RunResult.timeline``).  ``phases`` enables the wall-clock
    :class:`PhaseProfiler`, sampling one quantum in every
    ``phase_sample_every``.  The all-default config records nothing and
    resolves to the zero-cost null recorder.
    """

    timeline: bool = False
    timeline_capacity: int = 4096
    phases: bool = False
    phase_sample_every: int = 16

    def __post_init__(self) -> None:
        if self.timeline_capacity <= 0:
            raise ConfigError("timeline_capacity must be positive")
        if self.phase_sample_every <= 0:
            raise ConfigError("phase_sample_every must be positive")

    @property
    def active(self) -> bool:
        """True if this config asks for any instrumentation at all."""
        return self.timeline or self.phases


def make_recorder(config: Optional[ObsConfig]) -> Optional[MetricsRecorder]:
    """Build the recorder an :class:`ObsConfig` describes.

    Returns ``None`` for ``None`` or an all-disabled config -- callers
    pass that straight to the engine, which falls back to the shared
    null recorder.
    """
    if config is None or not config.active:
        return None
    profiler = (
        PhaseProfiler(config.phase_sample_every) if config.phases else None
    )
    if config.timeline:
        return TimelineRecorder(config.timeline_capacity, profiler=profiler)
    return profiler
