"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``       simulate a workload on NOVA / PolyGraph / Ligra
- ``sweep``     run a (workload x GPN-count x source) sweep through the
  cached process-parallel runner (see :mod:`repro.runner`), with a live
  progress/ETA line on stderr
- ``report``    aggregate a cached sweep into a cross-run bottleneck /
  outlier report (markdown + schema-versioned JSON, see
  :mod:`repro.obs.report`)
- ``profile``   run one instrumented NOVA simulation and print a
  bottleneck-attribution report (see :mod:`repro.obs`)
- ``serve``     boot the async job service (HTTP, see :mod:`repro.service`);
  ``--workers N`` additionally spawns a local fleet of N worker
  subprocesses sharing the coordinator's run cache
- ``worker``    boot one fleet worker and join it to a coordinator
  (register + heartbeat over ``/v1/workers``)
- ``submit``    post one simulation job to a running service
- ``status``    service health + job ledger (or one job's detail)
- ``fetch``     download a completed job's result as JSON
- ``graph``     manage the content-addressed graph artifact store
  (``build`` prebuilds mmap-able CSR artifacts, ``ls`` lists them,
  ``gc`` evicts least-recently-used artifacts past a byte budget --
  see :mod:`repro.graph.store`)
- ``generate``  build a synthetic graph and save it
- ``info``      print the system configuration (Table II) and tracker sizing
- ``resources`` print Table IV terascale requirements

Graph specifiers (for ``run --graph`` and ``generate --kind``)::

    rmat:SCALE[:EDGE_FACTOR]      e.g. rmat:16:16
    urand:VERTICES:EDGES          e.g. urand:100000:3000000
    powerlaw:VERTICES:AVG_DEGREE  e.g. powerlaw:100000:35
    road:WIDTH:HEIGHT             e.g. road:300:300
    suite:NAME                    Table III stand-in (road/twitter/...)
    PATH                          .npz / .txt edge list / .gr DIMACS
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional

from repro import (
    LigraConfig,
    LigraModel,
    NovaSystem,
    PolyGraphConfig,
    PolyGraphSystem,
    scaled_config,
)
from repro.analysis.resources import terascale_requirements
from repro.errors import ConfigError, ReproError
from repro.graph import io as graph_io
from repro.graph import suites
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    power_law,
    rmat,
    road_grid,
    uniform_random,
    with_uniform_weights,
)
from repro.units import KiB, MiB, bytes_to_human, rate_to_human

_SIZE_UNITS = {"kib": KiB, "mib": MiB, "gib": 1 << 30, "b": 1}


def parse_size(text: str) -> int:
    """Parse '64KiB' / '1.5MiB' / '4096' into bytes."""
    lowered = text.strip().lower()
    for suffix, unit in _SIZE_UNITS.items():
        if lowered.endswith(suffix):
            return int(float(lowered[: -len(suffix)]) * unit)
    return int(lowered)


def build_graph(spec: str, seed: int = 42) -> CSRGraph:
    """Resolve a graph specifier (see module docstring)."""
    if ":" not in spec:
        if spec.endswith(".npz"):
            return graph_io.load_npz(spec)
        if spec.endswith(".gr"):
            return graph_io.load_dimacs(spec)
        if spec.endswith(".txt") or spec.endswith(".el"):
            return graph_io.load_edge_list(spec)
        raise ReproError(f"unrecognized graph specifier: {spec!r}")
    kind, _, rest = spec.partition(":")
    args = rest.split(":") if rest else []
    if kind == "rmat":
        scale = int(args[0])
        edge_factor = int(args[1]) if len(args) > 1 else 16
        return rmat(scale, edge_factor, seed=seed)
    if kind == "urand":
        return uniform_random(int(args[0]), int(args[1]), seed=seed)
    if kind == "powerlaw":
        return power_law(int(args[0]), float(args[1]), seed=seed)
    if kind == "road":
        return road_grid(int(args[0]), int(args[1]), seed=seed)
    if kind == "suite":
        return suites.build_graph(args[0], seed=seed)
    raise ReproError(f"unknown graph kind: {kind!r}")


def _run_config(args: argparse.Namespace):
    """The system config a ``repro run`` invocation describes."""
    if args.system == "nova":
        config = scaled_config(num_gpns=args.gpns, scale=args.scale)
        if args.vmu_mode != "tracker":
            config = config.with_updates(vmu_mode=args.vmu_mode)
        return config
    if args.system == "polygraph":
        onchip = (
            parse_size(args.onchip) if args.onchip else int(32 * MiB * args.scale)
        )
        return PolyGraphConfig(onchip_bytes=onchip)
    return LigraConfig()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import GraphSpec, RunCache, RunSpec, execute_spec, spec_key
    from repro.runner.spec import resolve_source

    workload = args.workload
    gspec = GraphSpec(
        args.graph,
        seed=args.seed,
        weighted=(workload == "sssp"),
        symmetrized=(workload == "cc"),
    )
    graph = gspec.build()
    source = resolve_source(graph, workload, args.source)
    kwargs = {}
    if workload == "pr":
        kwargs["max_supersteps"] = args.pr_supersteps
    config = _run_config(args)
    if args.engine != "vectorized" and args.system != "nova":
        raise ConfigError("--engine applies to the nova system only")

    # Single runs go through the same content-addressed cache as sweeps
    # and service jobs, so a repeated run (from any front end) is a hit.
    # --verify runs uncached: the oracle pass decorates the result with
    # reference counts the cache key does not distinguish.
    if args.verify or args.no_cache:
        if args.system == "nova":
            system = NovaSystem(
                config, graph, placement=args.placement, engine=args.engine
            )
            print(system.describe())
        elif args.system == "polygraph":
            system = PolyGraphSystem(config, graph)
            print(
                f"PolyGraph: on-chip {bytes_to_human(config.onchip_bytes)}, "
                f"memory {rate_to_human(system.config.memory.peak_bandwidth)}"
            )
        else:
            system = LigraModel(config, graph)
            print("Ligra software model (8 cores, 32 MiB L3, 400 GB/s)")
        run = system.run(
            workload, source=source, compute_reference=args.verify, **kwargs
        )
    else:
        spec = RunSpec(
            workload,
            gspec,
            config=config,
            system="nova-jit" if args.engine == "jit" else args.system,
            source=source,
            placement=args.placement,
            workload_kwargs=kwargs,
        )
        cache = RunCache(args.cache_dir)
        key = spec_key(spec)
        run = cache.load(key)
        if run is not None:
            print(f"cache hit {key[:12]} ({cache.root})")
        else:
            print(f"cache miss {key[:12]}")
            run = execute_spec(spec)
            try:
                cache.store(key, run)
            except OSError:
                pass  # a full disk must not fail a finished run

    print(run.describe())
    for name, seconds in run.breakdown.items():
        print(f"  {name:>12}: {seconds * 1e3:9.4f} ms")
    for name, value in run.utilization.items():
        print(f"  util {name:>7}: {value:8.1%}")
    if args.verify:
        print("  result verified against the sequential oracle")
    return 0


def _sweep_grid(args: argparse.Namespace):
    """Build the (spec, row) grid shared by ``sweep`` and ``report``.

    Both subcommands must resolve the *same* grid from the same
    arguments -- ``repro report`` recomputes the sweep's cache keys to
    read its results without re-running anything -- so the grid logic
    lives here.  Returns ``(specs, rows)`` with rows of
    ``(workload, gpns, source)`` aligned with the specs.
    """
    from repro.core.harness import sample_sources
    from repro.obs import ObsConfig
    from repro.runner import GraphSpec, RunSpec

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    known = ("bfs", "cc", "sssp", "pr", "bc")
    for workload in workloads:
        if workload not in known:
            raise ConfigError(
                f"unknown workload {workload!r}; choose from {', '.join(known)}"
            )
    gpn_counts = [int(g) for g in args.gpns.split(",")]
    obs = (
        ObsConfig(timeline=True)
        if getattr(args, "timeline", False)
        else None
    )

    # --engine jit runs (and caches) under the nova-jit system key;
    # report passes the same flag to recompute matching keys.
    system = (
        "nova-jit"
        if getattr(args, "engine", "vectorized") == "jit"
        else "nova"
    )
    specs = []
    rows = []  # (workload, gpns, source) aligned with specs
    for workload in workloads:
        # One GraphSpec recipe per workload variant: --seed flows into
        # the build (and so into the content-addressed key) on every
        # path, and run/sweep/service submissions of the same inputs
        # digest to the same cache entry.
        gspec = GraphSpec(
            args.graph,
            seed=args.seed,
            weighted=(workload == "sssp"),
            symmetrized=(workload == "cc"),
        )
        graph = gspec.build()
        if workload in ("cc", "pr"):
            sources = [None]
        else:
            sources = [
                int(s)
                for s in sample_sources(graph, args.sources, seed=args.seed)
            ]
        kwargs = (
            {"max_supersteps": args.pr_supersteps} if workload == "pr" else {}
        )
        for gpns in gpn_counts:
            config = scaled_config(num_gpns=gpns, scale=args.scale)
            for source in sources:
                specs.append(
                    RunSpec(
                        workload,
                        gspec,
                        config=config,
                        system=system,
                        source=source,
                        placement=args.placement,
                        workload_kwargs=kwargs,
                        obs=obs,
                    )
                )
                rows.append((workload, gpns, source))
    return specs, rows


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.obs import render_counts
    from repro.runner import (
        RetryPolicy,
        RunFailure,
        SweepCheckpoint,
        SweepMonitor,
        SweepRunner,
        spec_key,
    )

    specs, rows = _sweep_grid(args)

    policy = RetryPolicy.from_env()
    if args.timeout is not None or args.retries is not None:
        updates = {}
        if args.timeout is not None:
            updates["timeout_seconds"] = args.timeout
        if args.retries is not None:
            updates["retries"] = args.retries
        import dataclasses

        policy = dataclasses.replace(policy, **updates)
    runner = SweepRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        policy=policy,
        batch=args.batch,
    )

    checkpoint = None
    if runner.cache is not None:
        keys = [spec_key(spec) for spec in specs]
        checkpoint = SweepCheckpoint.for_keys(runner.cache.root, keys)
        if args.resume:
            if not checkpoint.exists():
                raise ConfigError(
                    "no interrupted sweep to resume (checkpoint "
                    f"{checkpoint.sweep_id[:12]} not found); run without "
                    "--resume to start it"
                )
            done = len(checkpoint.completed_keys() & set(keys))
            print(
                f"resuming sweep {checkpoint.sweep_id[:12]}: "
                f"{done}/{len(set(keys))} runs already checkpointed"
            )
    elif args.resume:
        raise ConfigError("--resume needs the run cache (drop --no-cache)")

    monitor = (
        None
        if args.no_progress
        else SweepMonitor(stream=sys.stderr, interval_seconds=1.0)
    )
    results, stats = runner.run(
        specs, on_failure="return", checkpoint=checkpoint, monitor=monitor
    )

    print(f"{'workload':>8} {'gpns':>4} {'source':>8} {'time(ms)':>10} {'GTEPS':>8}")
    failures = []
    for (workload, gpns, source), run in zip(rows, results):
        src = "-" if source is None else str(source)
        if isinstance(run, RunFailure):
            failures.append(run)
            print(
                f"{workload:>8} {gpns:>4} {src:>8} "
                f"{'FAILED':>10} {run.kind:>8}"
            )
            continue
        print(
            f"{workload:>8} {gpns:>4} {src:>8} "
            f"{run.elapsed_seconds * 1e3:>10.4f} {run.gteps:>8.2f}"
        )
    print(stats)
    if stats.failed or stats.retried:
        # Per-sweep counter deltas, not the process-cumulative registry:
        # consecutive sweeps in one process each report their own counts.
        print(render_counts(stats.fault_counters))
        seen = set()
        for failure in failures:
            if failure.key in seen:
                continue
            seen.add(failure.key)
            print(f"  failed: {failure.describe()}")
    if checkpoint is not None:
        if stats.failed:
            print(
                f"checkpoint kept ({checkpoint.sweep_id[:12]}); fix and "
                "rerun with --resume to recompute only unfinished runs"
            )
        else:
            checkpoint.finish()
    return 1 if stats.failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        GROUPABLE_DIMS,
        SweepReport,
        entry_from_result,
    )
    from repro.runner import RunCache, SweepCheckpoint, spec_key

    group_by = tuple(
        dim.strip() for dim in args.group_by.split(",") if dim.strip()
    )
    for dim in group_by:
        if dim not in GROUPABLE_DIMS:
            raise ConfigError(
                f"cannot group by {dim!r}; choose from "
                f"{', '.join(GROUPABLE_DIMS)}"
            )

    specs, rows = _sweep_grid(args)
    cache = RunCache(args.cache_dir)
    keys = [spec_key(spec) for spec in specs]

    # An interrupted sweep leaves its checkpoint manifest behind; note
    # it so a partial report is never mistaken for a complete one.
    checkpoint = SweepCheckpoint.for_keys(cache.root, keys)
    if checkpoint.exists():
        done = len(checkpoint.completed_keys() & set(keys))
        print(
            f"note: sweep {checkpoint.sweep_id[:12]} is incomplete "
            f"({done}/{len(set(keys))} runs checkpointed); reporting on "
            "what finished",
            file=sys.stderr,
        )

    entries = []
    seen = set()
    found = 0
    for spec, key, (workload, gpns, source) in zip(specs, keys, rows):
        if key in seen:  # duplicate slots alias one cache entry
            continue
        seen.add(key)
        result = cache.load(key)
        if result is not None:
            found += 1
        entries.append(
            entry_from_result(
                key=key,
                workload=workload,
                graph=args.graph,
                gpns=gpns,
                source=source,
                result=result,
                pes=spec.config.num_pes if spec.config is not None else None,
            )
        )
    if not found:
        print(
            "error: no cached runs found for this grid; run the matching "
            "`repro sweep` first (same --graph/--workloads/--gpns/... "
            "arguments, including --timeline)",
            file=sys.stderr,
        )
        return 1

    report = SweepReport(
        entries, group_by=group_by, z_threshold=args.z_threshold
    )
    markdown = report.render_markdown()
    print(markdown, end="")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(report.to_json())
        print(f"wrote {args.json}", file=sys.stderr)
    if args.md:
        with open(args.md, "w", encoding="utf-8") as f:
            f.write(markdown)
        print(f"wrote {args.md}", file=sys.stderr)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        FAULT_COUNTERS,
        BottleneckReport,
        ObsConfig,
        make_recorder,
        trace_span,
    )

    from repro.runner import GraphSpec
    from repro.runner.spec import resolve_source

    workload = args.workload
    gspec = GraphSpec(
        args.graph,
        seed=args.seed,
        weighted=(workload == "sssp"),
        symmetrized=(workload == "cc"),
    )
    graph = gspec.build()
    source = resolve_source(graph, workload, args.source)
    kwargs = {}
    if workload == "pr":
        kwargs["max_supersteps"] = args.pr_supersteps

    obs = ObsConfig(
        timeline=True,
        timeline_capacity=args.timeline_capacity,
        phases=not args.no_phases,
        phase_sample_every=args.phase_every,
    )
    recorder = make_recorder(obs)
    config = scaled_config(num_gpns=args.gpns, scale=args.scale)
    system = NovaSystem(
        config, graph, placement=args.placement, engine=args.engine
    )
    # `--json` with no path streams the machine-readable report to
    # stdout; the rendered view moves to stderr so stdout stays pure
    # JSON for pipelines (`repro profile --json | jq ...`).
    json_stdout = args.json == "-"
    view = sys.stderr if json_stdout else sys.stdout
    print(system.describe(), file=view)
    with trace_span("cli.profile", workload=workload, graph=args.graph):
        run = system.run(workload, source=source, recorder=recorder, **kwargs)
    print(run.describe(), file=view)
    print(file=view)
    report = BottleneckReport.from_timeline(run.timeline)
    print(report.render(), file=view)
    profiler = recorder.phase_profiler
    if profiler is not None:
        print(file=view)
        print(profiler.render(), file=view)
    # Sweep-level fault/retry/timeout accounting (nonzero only when this
    # process also drove instrumented sweeps, e.g. via the runner API).
    print(FAULT_COUNTERS.render(), file=view)
    if json_stdout:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    elif args.json:
        payload = {
            "report": report.to_dict(),
            "timeline": run.timeline,
            "phases": profiler.to_dict() if profiler is not None else None,
            "fault_counters": FAULT_COUNTERS.snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _graph_variants(args: argparse.Namespace):
    """The GraphSpec recipes a ``repro graph build`` invocation names.

    ``--workloads`` mirrors the sweep grid's per-workload variants
    (sssp runs weighted, cc symmetrized), so prebuilding with the same
    workload list guarantees the sweep's exact artifacts exist.
    """
    from repro.runner import GraphSpec

    if args.workloads:
        workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
        variants = {}
        for workload in workloads:
            gspec = GraphSpec(
                args.graph,
                seed=args.seed,
                scale=args.scale,
                weighted=(workload == "sssp"),
                symmetrized=(workload == "cc"),
            )
            variants[gspec] = None  # de-dup, preserve order
        return list(variants)
    return [
        GraphSpec(
            args.graph,
            seed=args.seed,
            scale=args.scale,
            weighted=args.weighted,
            symmetrized=args.symmetrized,
        )
    ]


def _cmd_graph_build(args: argparse.Namespace) -> int:
    import time

    from repro.graph.store import GraphStore, spec_digest

    store = GraphStore(args.store_dir)
    for gspec in _graph_variants(args):
        digest = spec_digest(gspec)
        known = store.load(digest) is not None
        start = time.perf_counter()
        graph = store.get_or_build(gspec, gspec.build_uncached)
        elapsed = time.perf_counter() - start
        action = "mapped" if known else "built"
        flags = "".join(
            label
            for label, on in (
                ("+w", gspec.weighted),
                ("+sym", gspec.symmetrized),
            )
            if on
        )
        print(
            f"{action} {digest[:12]} {gspec.spec}{flags} "
            f"V={graph.num_vertices} E={graph.num_edges} "
            f"({elapsed:.2f}s, {store.root})"
        )
    return 0


def _cmd_graph_ls(args: argparse.Namespace) -> int:
    import time

    from repro.graph.store import GraphStore

    store = GraphStore(args.store_dir)
    entries = list(store.entries())
    if getattr(args, "json", False):
        import json

        now = time.time()
        rows = []
        for digest, size, mtime, manifest in sorted(
            entries, key=lambda item: item[2], reverse=True
        ):
            prov = manifest.get("provenance") or {}
            spec_fields = prov.get("spec") or {}
            rows.append({
                "digest": digest,
                "spec": spec_fields.get("spec"),
                "weighted": bool(spec_fields.get("weighted")),
                "symmetrized": bool(spec_fields.get("symmetrized")),
                "num_vertices": manifest.get("num_vertices", 0),
                "num_edges": manifest.get("num_edges", 0),
                "bytes": size,
                "age_seconds": max(0.0, now - mtime),
            })
        payload = {
            "root": str(store.root),
            "artifacts": rows,
            "total_bytes": sum(row["bytes"] for row in rows),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not entries:
        print(f"no graph artifacts in {store.root}")
        return 0
    print(f"{'digest':>12} {'spec':>24} {'V':>9} {'E':>11} {'size':>10} "
          f"{'last use':>9}")
    total = 0
    now = time.time()
    for digest, size, mtime, manifest in sorted(
        entries, key=lambda item: item[2], reverse=True
    ):
        total += size
        prov = manifest.get("provenance") or {}
        spec_fields = prov.get("spec") or {}
        label = spec_fields.get("spec", "?")
        if spec_fields.get("weighted"):
            label += "+w"
        if spec_fields.get("symmetrized"):
            label += "+sym"
        age = max(0.0, now - mtime)
        if age < 120:
            age_text = f"{age:.0f}s ago"
        elif age < 7200:
            age_text = f"{age / 60:.0f}m ago"
        else:
            age_text = f"{age / 3600:.0f}h ago"
        print(
            f"{digest[:12]:>12} {label:>24} "
            f"{manifest.get('num_vertices', 0):>9} "
            f"{manifest.get('num_edges', 0):>11} "
            f"{bytes_to_human(size):>10} {age_text:>9}"
        )
    print(f"{len(entries)} artifact(s), {bytes_to_human(total)} in {store.root}")
    return 0


def _cmd_graph_gc(args: argparse.Namespace) -> int:
    from repro.graph.store import GraphStore

    store = GraphStore(args.store_dir)
    max_bytes = parse_size(args.max_bytes)
    before = store.total_bytes()
    removed = store.prune(max_bytes)
    after = store.total_bytes()
    print(
        f"evicted {removed} artifact(s): {bytes_to_human(before)} -> "
        f"{bytes_to_human(after)} (budget {bytes_to_human(max_bytes)}, "
        f"{store.root})"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = build_graph(args.kind, seed=args.seed)
    if args.weights:
        graph = with_uniform_weights(graph, seed=args.seed)
    if args.out.endswith(".npz"):
        graph_io.save_npz(graph, args.out)
    elif args.out.endswith(".gr"):
        graph_io.save_dimacs(graph, args.out)
    else:
        graph_io.save_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    config = scaled_config(num_gpns=args.gpns, scale=args.scale)
    print(f"NOVA configuration (Table II, scale {args.scale:g}):")
    print(f"  GPNs x PEs:        {config.num_gpns} x {config.pes_per_gpn}")
    print(f"  frequency:         {config.frequency_hz / 1e9:.1f} GHz")
    print(f"  cache / PE:        {bytes_to_human(config.cache_bytes_per_pe)}")
    print(
        f"  vertex channel:    {bytes_to_human(config.vertex_channel.capacity_bytes)}"
        f" @ {rate_to_human(config.vertex_channel.peak_bandwidth)}"
    )
    print(
        f"  edge pool / GPN:   {bytes_to_human(config.edge_pool.capacity_bytes)}"
        f" @ {rate_to_human(config.edge_pool.peak_bandwidth)}"
    )
    print(
        f"  FUs / GPN:         {config.reduce_fus_per_gpn} reduce + "
        f"{config.propagate_fus_per_gpn} propagate"
    )
    print(
        f"  tracker:           superblock_dim={config.superblock_dim}, "
        f"{config.tracker_capacity_bits() / 8 / 1024:.1f} KiB per PE "
        f"(Eq 1-2)"
    )
    print(
        f"  on-chip / GPN:     {bytes_to_human(config.onchip_bytes_per_gpn())}"
    )
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    print("Resources to support WDC12 (Table IV):")
    for row in terascale_requirements():
        print("  " + row.row())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import validate_all

    graph = build_graph(args.graph, seed=args.seed)
    reports = validate_all(graph, scale=args.scale)
    failed = 0
    for report in reports:
        print(report.summary())
        if not report.passed:
            failed += 1
    print(
        f"{len(reports) - failed}/{len(reports)} workloads validated "
        "across functional/NOVA/PolyGraph/Ligra"
    )
    return 1 if failed else 0


def _job_spec_from_args(args: argparse.Namespace) -> dict:
    """A JSON job spec mirroring one ``repro run`` invocation."""
    spec = {
        "workload": args.workload,
        "graph": args.graph,
        "seed": args.seed,
        "system": args.system,
        "gpns": args.gpns,
        "scale": args.scale,
        "placement": args.placement,
        "timeline": args.timeline,
    }
    if args.source is not None:
        spec["source"] = args.source
    if args.workload == "pr":
        spec["workload_kwargs"] = {"max_supersteps": args.pr_supersteps}
    return spec


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.runner import SweepRunner, default_cache_dir
    from repro.service import ReproService
    from repro.service.worker import LocalWorkerPool

    runner = SweepRunner(
        workers=args.run_workers, cache_dir=args.cache_dir
    )
    state_dir = args.state_dir or os.path.join(
        args.cache_dir or default_cache_dir(), "service"
    )
    service = ReproService(
        state_dir,
        runner=runner,
        max_queue_depth=args.queue_depth,
        job_workers=args.job_workers,
        drain_timeout=args.drain_timeout,
        lease_seconds=args.lease,
        max_requeues=args.max_requeues,
        quota_max_active=args.quota_max_active,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        batch_limit=args.batch_limit,
    )

    pool: Optional[LocalWorkerPool] = None

    def on_ready(port: int) -> None:
        nonlocal pool
        print(
            f"repro service listening on http://{args.host}:{port}",
            flush=True,
        )
        print(f"  state: {state_dir}", flush=True)
        print(f"  cache: {runner.cache.root}", flush=True)
        if args.workers > 0:
            pool = LocalWorkerPool(
                f"http://{args.host}:{port}",
                count=args.workers,
                cache_dir=runner.cache.root,
                state_root=os.path.join(state_dir, "fleet"),
                host=args.host,
                lease_seconds=args.lease,
            )
            pids = pool.start()
            print(
                f"  fleet: {args.workers} local worker(s), pids "
                f"{','.join(str(p) for p in pids)}",
                flush=True,
            )

    try:
        summary = asyncio.run(
            service.serve_forever(args.host, args.port, on_ready=on_ready)
        )
    finally:
        if pool is not None:
            pool.stop()
    print(
        "drained: running "
        + ("finished" if summary["drained"] else "interrupted")
        + f", {summary['queued']} queued job(s) persisted for restart",
        flush=True,
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.runner import SweepRunner, default_cache_dir
    from repro.service import ReproService
    from repro.service.worker import WorkerAgent

    runner = SweepRunner(
        workers=args.run_workers, cache_dir=args.cache_dir
    )
    state_dir = args.state_dir or os.path.join(
        args.cache_dir or default_cache_dir(), "worker"
    )
    service = ReproService(
        state_dir,
        runner=runner,
        max_queue_depth=args.queue_depth,
        job_workers=args.job_workers,
        drain_timeout=args.drain_timeout,
    )

    async def main() -> dict:
        port = await service.start(args.host, args.port)
        service._install_signal_handlers()
        advertise = args.advertise or f"http://{args.host}:{port}"
        agent = WorkerAgent(
            args.coordinator,
            advertise,
            capacity=args.capacity,
            lease_seconds=args.lease,
        )
        agent_task = asyncio.create_task(agent.run())
        print(
            f"repro worker listening on http://{args.host}:{port}",
            flush=True,
        )
        print(f"  coordinator: {args.coordinator}", flush=True)
        print(f"  cache: {runner.cache.root}", flush=True)
        assert service._stop is not None
        await service._stop.wait()
        await agent.stop()
        agent_task.cancel()
        try:
            await agent_task
        except asyncio.CancelledError:
            pass
        return await service.stop()

    summary = asyncio.run(main())
    print(
        "worker drained: running "
        + ("finished" if summary["drained"] else "interrupted")
        + f", {summary['queued']} queued job(s) persisted",
        flush=True,
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import TERMINAL_STATES
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    job = client.submit(
        _job_spec_from_args(args), client=args.client, priority=args.priority
    )
    suffix = " (served from cache)" if job.get("cached") else ""
    print(f"job {job['id']}: {job['state']}{suffix}")
    if args.wait and job["state"] not in TERMINAL_STATES:
        job = client.wait(job["id"], timeout=args.wait_timeout)
        print(f"job {job['id']}: {job['state']}")
    if job["state"] == "done" and (args.wait or job.get("cached")):
        print(client.result(job["id"])["result"]["summary"])
    if job["state"] == "failed":
        print(
            f"error: {job.get('error_type')}: {job.get('error_message')}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    if args.job:
        print(json.dumps(client.job(args.job), indent=2, sort_keys=True))
        return 0
    health = client.health()
    print(
        f"service {health['status']} | queue "
        f"{health['queue_depth']}/{health['max_queue_depth']} | "
        f"running {health['running']}/{health['job_workers']}"
    )
    jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'id':>16} {'state':>10} {'client':>12} {'prio':>4}  spec")
    for job in jobs:
        spec = job["spec"]
        cached = " (cached)" if job.get("cached") else ""
        print(
            f"{job['id']:>16} {job['state']:>10} {job['client']:>12} "
            f"{job['priority']:>4}  {spec['system']}/{spec['workload']} "
            f"{spec['graph']}{cached}"
        )
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    payload = client.result(args.job)
    print(payload["result"]["summary"], file=sys.stderr)
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.json}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.stitch import (
        load_trace_records,
        render_tree,
        resolve_trace_id,
        stitch,
    )

    files = list(args.files)
    if not files:
        target = os.environ.get("REPRO_TRACE", "").strip()
        if target and target.lower() not in ("1", "true", "stderr"):
            files = [target]
    if not files:
        print(
            "error: no trace files -- pass paths or set REPRO_TRACE "
            "to a file path",
            file=sys.stderr,
        )
        return 1
    missing = [path for path in files if not os.path.exists(path)]
    if missing:
        print(f"error: no such trace file: {missing[0]}", file=sys.stderr)
        return 1
    records = load_trace_records(files)
    trace_id = resolve_trace_id(records, args.id)
    if trace_id is None:
        print(
            f"error: no trace matching {args.id!r} among "
            f"{len(records)} records",
            file=sys.stderr,
        )
        return 1
    roots, orphans = stitch(records, trace_id)
    print(render_tree(roots, orphans, trace_id))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient
    from repro.service.top import ServiceTop

    top = ServiceTop(
        ServiceClient(args.url),
        stream=sys.stdout,
        interval_seconds=args.interval,
    )
    iterations = 1 if args.once else args.iterations
    top.run(iterations=iterations)
    return 0


def _parse_edge_list(text: Optional[str]) -> list:
    """``"1:2,3:4"`` -> ``[[1, 2], [3, 4]]`` (empty/None -> ``[]``)."""
    if not text:
        return []
    edges = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            src, dst = part.split(":")
            edges.append([int(src), int(dst)])
        except ValueError:
            raise ReproError(
                f"bad edge {part!r}: expected src:dst, e.g. 1:2"
            ) from None
    return edges


def _print_session(record: dict) -> None:
    print(
        f"session {record['id']}: {record['state']} {record['graph']} "
        f"seed={record['seed']} version={record['version_digest'][:12]} "
        f"deltas={record['delta_seq']}"
    )


def _cmd_stream_session(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    record = client.create_session(
        args.graph, seed=args.seed, client=args.client
    )
    _print_session(record)
    return 0


def _cmd_stream_ls(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    records = client.sessions()
    if not records:
        print("no sessions")
        return 0
    print(f"{'id':>16} {'state':>7} {'graph':>20} {'version':>12} "
          f"{'deltas':>6}  client")
    for record in records:
        print(
            f"{record['id']:>16} {record['state']:>7} "
            f"{record['graph']:>20} {record['version_digest'][:12]:>12} "
            f"{record['delta_seq']:>6}  {record['client']}"
        )
    return 0


def _cmd_stream_apply(args: argparse.Namespace) -> int:
    import json

    from repro.service.client import ServiceClient

    inserts = _parse_edge_list(args.insert)
    deletes = _parse_edge_list(args.delete)
    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            payload = json.load(f)
        inserts.extend(payload.get("inserts", []))
        deletes.extend(payload.get("deletes", []))
    if not inserts and not deletes:
        print("error: empty delta -- pass --insert/--delete/--file",
              file=sys.stderr)
        return 1
    client = ServiceClient(args.url)
    record = client.apply_delta(
        args.session, inserts=inserts, deletes=deletes
    )
    print(
        f"applied +{len(inserts)}/-{len(deletes)} edge(s): ",
        end="",
    )
    _print_session(record)
    return 0


def _cmd_stream_query(args: argparse.Namespace) -> int:
    import json

    from repro.service import TERMINAL_STATES
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    job = client.session_submit(
        args.session,
        workload=args.workload,
        mode=args.mode,
        source=args.source,
        client=args.client,
        priority=args.priority,
    )
    suffix = " (served from cache)" if job.get("cached") else ""
    print(f"job {job['id']}: {job['state']}{suffix}")
    if args.wait and job["state"] not in TERMINAL_STATES:
        job = client.wait(job["id"], timeout=args.wait_timeout)
        print(f"job {job['id']}: {job['state']}")
    if job["state"] == "done" and (args.wait or job.get("cached")):
        payload = client.result(job["id"])
        print(payload["result"]["summary"])
        if args.json:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(json.dumps(payload, indent=2, sort_keys=True))
            print(f"wrote {args.json}", file=sys.stderr)
    if job["state"] == "failed":
        print(
            f"error: {job.get('error_type')}: {job.get('error_message')}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_stream_compact(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    record = client.compact_session(args.session)
    print("compacted: ", end="")
    _print_session(record)
    return 0


def _cmd_stream_close(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.url)
    record = client.close_session(args.session)
    _print_session(record)
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NOVA graph-accelerator reproduction (HPCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload")
    run.add_argument("--system", choices=("nova", "polygraph", "ligra"),
                     default="nova")
    run.add_argument("--workload", choices=("bfs", "cc", "sssp", "pr", "bc"),
                     default="bfs")
    run.add_argument("--graph", default="rmat:14:16",
                     help="graph specifier (see --help header)")
    run.add_argument("--gpns", type=int, default=1)
    run.add_argument("--scale", type=float, default=1 / 256,
                     help="capacity scale vs Table II")
    run.add_argument("--placement", default="random",
                     choices=("interleave", "random", "load_balanced",
                              "locality"))
    run.add_argument("--vmu-mode", default="tracker",
                     choices=("tracker", "fifo"))
    run.add_argument("--onchip", default=None,
                     help="PolyGraph on-chip size, e.g. 128KiB")
    run.add_argument("--source", type=int, default=None,
                     help="source vertex (default: highest out-degree)")
    run.add_argument("--pr-supersteps", type=int, default=10)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--engine", default="vectorized",
                     choices=("vectorized", "jit"),
                     help="nova simulation engine: vectorized (default) "
                          "or jit (numba-compiled kernels, falls back to "
                          "vectorized without numba; cached under the "
                          "nova-jit system key)")
    run.add_argument("--verify", action="store_true",
                     help="check results against the sequential oracle "
                          "(runs uncached)")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute even if the run cache has this spec")
    run.add_argument("--cache-dir", default=None,
                     help="run-cache root (default: REPRO_CACHE_DIR or "
                          "~/.cache/repro-nova)")
    run.set_defaults(func=_cmd_run)

    def add_grid_args(parser: argparse.ArgumentParser) -> None:
        """The sweep-grid arguments `sweep` and `report` must share --
        `report` rebuilds the same grid to recompute the cache keys."""
        parser.add_argument("--graph", default="rmat:14:16",
                            help="graph specifier (see --help header)")
        parser.add_argument("--workloads", default="bfs",
                            help="comma-separated, e.g. bfs,sssp,pr")
        parser.add_argument("--gpns", default="1",
                            help="comma-separated GPN counts, e.g. 1,2,4,8")
        parser.add_argument("--sources", type=int, default=4,
                            help="sampled sources per traversal workload")
        parser.add_argument("--scale", type=float, default=1 / 256)
        parser.add_argument("--placement", default="random",
                            choices=("interleave", "random", "load_balanced",
                                     "locality"))
        parser.add_argument("--pr-supersteps", type=int, default=10)
        parser.add_argument("--seed", type=int, default=42)
        parser.add_argument("--timeline", action="store_true",
                            help="instrument every run with a per-quantum "
                                 "timeline (cached separately; gives "
                                 "`repro report` bottleneck shares)")
        parser.add_argument("--engine", default="vectorized",
                            choices=("vectorized", "jit"),
                            help="simulation engine: vectorized (default) "
                                 "or jit (numba-compiled kernels, falls "
                                 "back to vectorized without numba; cached "
                                 "under the nova-jit system key)")
        parser.add_argument("--cache-dir", default=None,
                            help="run-cache root (default: REPRO_CACHE_DIR "
                                 "or ~/.cache/repro-nova)")

    sweep = sub.add_parser(
        "sweep",
        help="run a cached, process-parallel sweep of NOVA simulations",
    )
    add_grid_args(sweep)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_WORKERS or "
                            "cpu count)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute every run and store nothing")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep: require its "
                            "checkpoint and recompute only unfinished runs")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds "
                            "(default: REPRO_RUN_TIMEOUT or none)")
    sweep.add_argument("--retries", type=int, default=None,
                       help="extra attempts for transient failures "
                            "(default: REPRO_RUN_RETRIES or 1)")
    sweep.add_argument("--no-progress", action="store_true",
                       help="suppress the live progress line on stderr")
    sweep.add_argument("--batch", action=argparse.BooleanOptionalAction,
                       default=None,
                       help="group same-graph cells into one worker task "
                            "each round, amortizing dispatch and system "
                            "construction (default: REPRO_SWEEP_BATCH, "
                            "else off)")
    sweep.set_defaults(func=_cmd_sweep)

    rep = sub.add_parser(
        "report",
        help="aggregate a cached sweep into a cross-run bottleneck report",
    )
    add_grid_args(rep)
    rep.add_argument("--group-by", default="workload,graph,gpns",
                     help="comma-separated grouping dimensions "
                          "(workload, graph, gpns, source)")
    rep.add_argument("--z-threshold", type=float, default=3.0,
                     help="flag runs whose throughput diverges from their "
                          "group by more than this many standard deviations")
    rep.add_argument("--json", default=None,
                     help="write the schema-versioned JSON report here")
    rep.add_argument("--md", default=None,
                     help="write the rendered markdown report here")
    rep.set_defaults(func=_cmd_report)

    prof = sub.add_parser(
        "profile",
        help="run one instrumented NOVA simulation and attribute its time",
    )
    prof.add_argument("--workload", choices=("bfs", "cc", "sssp", "pr", "bc"),
                      default="bfs")
    prof.add_argument("--graph", default="rmat:12:8",
                      help="graph specifier (see --help header)")
    prof.add_argument("--gpns", type=int, default=1)
    prof.add_argument("--scale", type=float, default=1 / 256,
                      help="capacity scale vs Table II")
    prof.add_argument("--placement", default="random",
                      choices=("interleave", "random", "load_balanced",
                               "locality"))
    prof.add_argument("--engine", default="vectorized",
                      choices=("vectorized", "scalar", "jit"))
    prof.add_argument("--source", type=int, default=None,
                      help="source vertex (default: highest out-degree)")
    prof.add_argument("--pr-supersteps", type=int, default=10)
    prof.add_argument("--seed", type=int, default=42)
    prof.add_argument("--timeline-capacity", type=int, default=4096,
                      help="ring-buffer quanta kept in the timeline")
    prof.add_argument("--phase-every", type=int, default=16,
                      help="sample wall-time one quantum in every N")
    prof.add_argument("--no-phases", action="store_true",
                      help="skip wall-clock phase profiling")
    prof.add_argument("--json", nargs="?", const="-", default=None,
                      help="bare --json: print the bottleneck report as "
                           "JSON on stdout (rendered view moves to "
                           "stderr); --json PATH: write the full payload "
                           "(report + timeline + phases) to PATH")
    prof.set_defaults(func=_cmd_profile)

    serve = sub.add_parser(
        "serve",
        help="run the async job service (submit simulations over HTTP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8734,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--cache-dir", default=None,
                       help="run-cache root shared with run/sweep/report")
    serve.add_argument("--state-dir", default=None,
                       help="job-journal directory (default: "
                            "<cache-dir>/service)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="waiting jobs admitted before 429 backpressure")
    serve.add_argument("--job-workers", type=int, default=2,
                       help="jobs executed concurrently")
    serve.add_argument("--run-workers", type=int, default=1,
                       help="SweepRunner processes per job; >=2 adds "
                            "per-job process isolation")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to let running jobs finish on "
                            "SIGTERM before giving up")
    serve.add_argument("--workers", type=int, default=0,
                       help="spawn N local fleet workers sharing this "
                            "coordinator's run cache (0 = run jobs "
                            "in-process)")
    serve.add_argument("--lease", type=float, default=10.0,
                       help="worker lease in seconds; a worker missing "
                            "heartbeats this long is declared dead and "
                            "its jobs re-queue")
    serve.add_argument("--max-requeues", type=int, default=3,
                       help="times one job may be re-queued after "
                            "worker loss before failing")
    serve.add_argument("--quota-max-active", type=int, default=None,
                       help="per-tenant cap on concurrently active "
                            "jobs (429 above it)")
    serve.add_argument("--quota-rate", type=float, default=None,
                       help="per-tenant submissions per second "
                            "(token bucket; 429 above it)")
    serve.add_argument("--quota-burst", type=float, default=None,
                       help="token-bucket burst size (default: rate)")
    serve.add_argument("--batch-limit", type=int, default=1,
                       help="same-graph batch lane width: a job worker "
                            "claims up to this many queued jobs sharing "
                            "one graph and runs them as a single sweep "
                            "(1 disables; fleet dispatch unaffected)")
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run one fleet worker and join it to a coordinator",
    )
    worker.add_argument("--coordinator", required=True,
                        help="coordinator base URL to register with")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, default=0,
                        help="listen port (0 picks a free one)")
    worker.add_argument("--advertise", default=None,
                        help="URL the coordinator should dial back "
                             "(default: http://<host>:<port>)")
    worker.add_argument("--cache-dir", default=None,
                        help="run-cache root; share the coordinator's "
                             "for zero-copy result hand-off")
    worker.add_argument("--state-dir", default=None,
                        help="job-journal directory (default: "
                             "<cache-dir>/worker)")
    worker.add_argument("--queue-depth", type=int, default=64)
    worker.add_argument("--job-workers", type=int, default=1,
                        help="jobs executed concurrently")
    worker.add_argument("--run-workers", type=int, default=1,
                        help="SweepRunner processes per job")
    worker.add_argument("--capacity", type=int, default=1,
                        help="in-flight dispatches advertised to the "
                             "coordinator's router")
    worker.add_argument("--lease", type=float, default=None,
                        help="requested lease seconds (default: the "
                             "coordinator's lease)")
    worker.add_argument("--drain-timeout", type=float, default=30.0)
    worker.set_defaults(func=_cmd_worker)

    def add_client_args(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--url", default="http://127.0.0.1:8734",
                            help="service base URL")

    submit = sub.add_parser(
        "submit", help="submit one simulation job to a running service"
    )
    add_client_args(submit)
    submit.add_argument("--system", choices=("nova", "polygraph", "ligra"),
                        default="nova")
    submit.add_argument("--workload",
                        choices=("bfs", "cc", "sssp", "pr", "bc"),
                        default="bfs")
    submit.add_argument("--graph", default="rmat:14:16",
                        help="graph specifier (see --help header)")
    submit.add_argument("--gpns", type=int, default=1)
    submit.add_argument("--scale", type=float, default=1 / 256)
    submit.add_argument("--placement", default="random",
                        choices=("interleave", "random", "load_balanced",
                                 "locality"))
    submit.add_argument("--source", type=int, default=None)
    submit.add_argument("--pr-supersteps", type=int, default=10)
    submit.add_argument("--seed", type=int, default=42)
    submit.add_argument("--timeline", action="store_true",
                        help="instrument the run with a per-quantum "
                             "timeline")
    submit.add_argument("--client", default="cli",
                        help="client name for fairness accounting")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first")
    submit.add_argument("--wait", action="store_true",
                        help="long-poll events until the job settles")
    submit.add_argument("--wait-timeout", type=float, default=None,
                        help="give up waiting after this many seconds")
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="show service health and the job ledger"
    )
    add_client_args(status)
    status.add_argument("job", nargs="?", default=None,
                        help="job id for a single-job detail view")
    status.set_defaults(func=_cmd_status)

    fetch = sub.add_parser(
        "fetch", help="fetch a completed job's result as JSON"
    )
    add_client_args(fetch)
    fetch.add_argument("job", help="job id")
    fetch.add_argument("--json", default=None,
                       help="write the payload here instead of stdout")
    fetch.set_defaults(func=_cmd_fetch)

    trace = sub.add_parser(
        "trace",
        help="stitch REPRO_TRACE JSONL files into one trace's span tree",
    )
    trace.add_argument(
        "id",
        help="trace id (or unique prefix), traceparent, or job id",
    )
    trace.add_argument(
        "files", nargs="*", default=[],
        help="trace JSONL files (default: the REPRO_TRACE file)",
    )
    trace.set_defaults(func=_cmd_trace)

    top = sub.add_parser(
        "top", help="live dashboard over a running service"
    )
    add_client_args(top)
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after this many frames (default: forever)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame and exit")
    top.set_defaults(func=_cmd_top)

    stream = sub.add_parser(
        "stream",
        help="resident graph sessions: deltas and incremental queries",
    )
    ssub = stream.add_subparsers(dest="stream_command", required=True)

    ssession = ssub.add_parser(
        "session", help="pin a base graph as a resident session"
    )
    add_client_args(ssession)
    ssession.add_argument("--graph", default="rmat:14:16",
                          help="graph specifier (see --help header)")
    ssession.add_argument("--seed", type=int, default=42)
    ssession.add_argument("--client", default="cli",
                          help="client name for fairness accounting")
    ssession.set_defaults(func=_cmd_stream_session)

    sls = ssub.add_parser("ls", help="list resident sessions")
    add_client_args(sls)
    sls.set_defaults(func=_cmd_stream_ls)

    sapply = ssub.add_parser(
        "apply", help="append one edge-delta batch to a session"
    )
    add_client_args(sapply)
    sapply.add_argument("session", help="session id")
    sapply.add_argument("--insert", default=None,
                        help="edges to insert, e.g. 1:2,3:4")
    sapply.add_argument("--delete", default=None,
                        help="edges to delete, e.g. 5:6")
    sapply.add_argument("--file", default=None,
                        help="JSON file with inserts/deletes arrays")
    sapply.set_defaults(func=_cmd_stream_apply)

    squery = ssub.add_parser(
        "query", help="run a workload against the session's current version"
    )
    add_client_args(squery)
    squery.add_argument("session", help="session id")
    squery.add_argument("--workload", choices=("bfs", "cc", "pr"),
                        default="pr")
    squery.add_argument("--mode", choices=("incremental", "cold"),
                        default="incremental",
                        help="incremental reuses resident state; cold "
                             "recomputes on the materialized graph")
    squery.add_argument("--source", type=int, default=None,
                        help="bfs source (default: highest out-degree)")
    squery.add_argument("--client", default="cli")
    squery.add_argument("--priority", type=int, default=0)
    squery.add_argument("--wait", action="store_true",
                        help="long-poll events until the job settles")
    squery.add_argument("--wait-timeout", type=float, default=None)
    squery.add_argument("--json", default=None,
                        help="write the result payload here")
    squery.set_defaults(func=_cmd_stream_query)

    scompact = ssub.add_parser(
        "compact",
        help="merge a session's deltas into a fresh published CSR",
    )
    add_client_args(scompact)
    scompact.add_argument("session", help="session id")
    scompact.set_defaults(func=_cmd_stream_compact)

    sclose = ssub.add_parser("close", help="close a session")
    add_client_args(sclose)
    sclose.add_argument("session", help="session id")
    sclose.set_defaults(func=_cmd_stream_close)

    graph = sub.add_parser(
        "graph",
        help="manage the graph artifact store (build once, mmap everywhere)",
    )
    gsub = graph.add_subparsers(dest="graph_command", required=True)

    def add_store_arg(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--store-dir", default=None,
                            help="artifact store root (default: "
                                 "REPRO_GRAPH_STORE_DIR or <cache>/graphs)")

    gbuild = gsub.add_parser(
        "build",
        help="prebuild a graph artifact so later runs map instead of build",
    )
    gbuild.add_argument("--graph", required=True,
                        help="graph specifier (see --help header)")
    gbuild.add_argument("--seed", type=int, default=42)
    gbuild.add_argument("--scale", type=float, default=None,
                        help="suite: graph scale (default: suite default)")
    gbuild.add_argument("--weighted", action="store_true",
                        help="attach uniform edge weights (the sssp variant)")
    gbuild.add_argument("--symmetrized", action="store_true",
                        help="symmetrize edges (the cc variant)")
    gbuild.add_argument("--workloads", default=None,
                        help="comma-separated workload list; builds the "
                             "exact per-workload variants a sweep over "
                             "these workloads will map (overrides "
                             "--weighted/--symmetrized)")
    add_store_arg(gbuild)
    gbuild.set_defaults(func=_cmd_graph_build)

    gls = gsub.add_parser("ls", help="list stored graph artifacts")
    gls.add_argument("--json", action="store_true",
                     help="machine-readable listing with byte sizes")
    add_store_arg(gls)
    gls.set_defaults(func=_cmd_graph_ls)

    ggc = gsub.add_parser(
        "gc", help="evict least-recently-used artifacts past a byte budget"
    )
    ggc.add_argument("--max-bytes", required=True,
                     help="byte budget, e.g. 512MiB or 2GiB")
    add_store_arg(ggc)
    ggc.set_defaults(func=_cmd_graph_gc)

    gen = sub.add_parser("generate", help="build and save a graph")
    gen.add_argument("--kind", required=True, help="graph specifier")
    gen.add_argument("--out", required=True, help=".npz / .gr / .txt path")
    gen.add_argument("--weights", action="store_true")
    gen.add_argument("--seed", type=int, default=42)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="print the system configuration")
    info.add_argument("--gpns", type=int, default=1)
    info.add_argument("--scale", type=float, default=1.0)
    info.set_defaults(func=_cmd_info)

    res = sub.add_parser("resources", help="Table IV terascale sizing")
    res.set_defaults(func=_cmd_resources)

    val = sub.add_parser(
        "validate",
        help="run every workload on every engine and check the oracles",
    )
    val.add_argument("--graph", default="rmat:11:8", help="graph specifier")
    val.add_argument("--scale", type=float, default=1 / 256)
    val.add_argument("--seed", type=int, default=42)
    val.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
