"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``       simulate a workload on NOVA / PolyGraph / Ligra
- ``sweep``     run a (workload x GPN-count x source) sweep through the
  cached process-parallel runner (see :mod:`repro.runner`)
- ``profile``   run one instrumented NOVA simulation and print a
  bottleneck-attribution report (see :mod:`repro.obs`)
- ``generate``  build a synthetic graph and save it
- ``info``      print the system configuration (Table II) and tracker sizing
- ``resources`` print Table IV terascale requirements

Graph specifiers (for ``run --graph`` and ``generate --kind``)::

    rmat:SCALE[:EDGE_FACTOR]      e.g. rmat:16:16
    urand:VERTICES:EDGES          e.g. urand:100000:3000000
    powerlaw:VERTICES:AVG_DEGREE  e.g. powerlaw:100000:35
    road:WIDTH:HEIGHT             e.g. road:300:300
    suite:NAME                    Table III stand-in (road/twitter/...)
    PATH                          .npz / .txt edge list / .gr DIMACS
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

import numpy as np

from repro import (
    LigraConfig,
    LigraModel,
    NovaSystem,
    PolyGraphConfig,
    PolyGraphSystem,
    scaled_config,
)
from repro.analysis.resources import terascale_requirements
from repro.errors import ConfigError, ReproError
from repro.graph import io as graph_io
from repro.graph import suites
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    power_law,
    rmat,
    road_grid,
    uniform_random,
    with_uniform_weights,
)
from repro.units import KiB, MiB, bytes_to_human, rate_to_human

_SIZE_UNITS = {"kib": KiB, "mib": MiB, "gib": 1 << 30, "b": 1}


def parse_size(text: str) -> int:
    """Parse '64KiB' / '1.5MiB' / '4096' into bytes."""
    lowered = text.strip().lower()
    for suffix, unit in _SIZE_UNITS.items():
        if lowered.endswith(suffix):
            return int(float(lowered[: -len(suffix)]) * unit)
    return int(lowered)


def build_graph(spec: str, seed: int = 42) -> CSRGraph:
    """Resolve a graph specifier (see module docstring)."""
    if ":" not in spec:
        if spec.endswith(".npz"):
            return graph_io.load_npz(spec)
        if spec.endswith(".gr"):
            return graph_io.load_dimacs(spec)
        if spec.endswith(".txt") or spec.endswith(".el"):
            return graph_io.load_edge_list(spec)
        raise ReproError(f"unrecognized graph specifier: {spec!r}")
    kind, _, rest = spec.partition(":")
    args = rest.split(":") if rest else []
    if kind == "rmat":
        scale = int(args[0])
        edge_factor = int(args[1]) if len(args) > 1 else 16
        return rmat(scale, edge_factor, seed=seed)
    if kind == "urand":
        return uniform_random(int(args[0]), int(args[1]), seed=seed)
    if kind == "powerlaw":
        return power_law(int(args[0]), float(args[1]), seed=seed)
    if kind == "road":
        return road_grid(int(args[0]), int(args[1]), seed=seed)
    if kind == "suite":
        return suites.build_graph(args[0])
    raise ReproError(f"unknown graph kind: {kind!r}")


def _cmd_run(args: argparse.Namespace) -> int:
    graph = build_graph(args.graph, seed=args.seed)
    workload = args.workload
    if workload == "sssp" and not graph.has_weights:
        graph = with_uniform_weights(graph, seed=args.seed)
    if workload == "cc":
        graph = graph.symmetrized()

    source: Optional[int] = None
    if workload not in ("cc", "pr"):
        source = (
            int(np.argmax(graph.out_degrees()))
            if args.source is None
            else args.source
        )

    kwargs = {}
    if workload == "pr":
        kwargs["max_supersteps"] = args.pr_supersteps

    if args.system == "nova":
        config = scaled_config(num_gpns=args.gpns, scale=args.scale)
        if args.vmu_mode != "tracker":
            config = config.with_updates(vmu_mode=args.vmu_mode)
        system = NovaSystem(config, graph, placement=args.placement)
        print(system.describe())
    elif args.system == "polygraph":
        onchip = parse_size(args.onchip) if args.onchip else int(32 * MiB * args.scale)
        system = PolyGraphSystem(PolyGraphConfig(onchip_bytes=onchip), graph)
        print(
            f"PolyGraph: on-chip {bytes_to_human(onchip)}, memory "
            f"{rate_to_human(system.config.memory.peak_bandwidth)}"
        )
    else:
        system = LigraModel(LigraConfig(), graph)
        print("Ligra software model (8 cores, 32 MiB L3, 400 GB/s)")

    run = system.run(
        workload, source=source, compute_reference=args.verify, **kwargs
    )
    print(run.describe())
    for name, seconds in run.breakdown.items():
        print(f"  {name:>12}: {seconds * 1e3:9.4f} ms")
    for name, value in run.utilization.items():
        print(f"  util {name:>7}: {value:8.1%}")
    if args.verify:
        print("  result verified against the sequential oracle")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.harness import sample_sources
    from repro.obs import FAULT_COUNTERS
    from repro.runner import (
        RetryPolicy,
        RunFailure,
        RunSpec,
        SweepCheckpoint,
        SweepRunner,
        spec_key,
    )

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    known = ("bfs", "cc", "sssp", "pr", "bc")
    for workload in workloads:
        if workload not in known:
            raise ConfigError(
                f"unknown workload {workload!r}; choose from {', '.join(known)}"
            )
    gpn_counts = [int(g) for g in args.gpns.split(",")]
    base_graph = build_graph(args.graph, seed=args.seed)

    specs = []
    rows = []  # (workload, gpns, source) aligned with specs
    for workload in workloads:
        graph = base_graph
        if workload == "sssp" and not graph.has_weights:
            graph = with_uniform_weights(base_graph, seed=args.seed)
        elif workload == "cc":
            graph = base_graph.symmetrized()
        if workload in ("cc", "pr"):
            sources = [None]
        else:
            sources = [
                int(s)
                for s in sample_sources(graph, args.sources, seed=args.seed)
            ]
        kwargs = (
            {"max_supersteps": args.pr_supersteps} if workload == "pr" else {}
        )
        for gpns in gpn_counts:
            config = scaled_config(num_gpns=gpns, scale=args.scale)
            for source in sources:
                specs.append(
                    RunSpec(
                        workload,
                        graph,
                        config=config,
                        source=source,
                        placement=args.placement,
                        workload_kwargs=kwargs,
                    )
                )
                rows.append((workload, gpns, source))

    policy = RetryPolicy.from_env()
    if args.timeout is not None or args.retries is not None:
        updates = {}
        if args.timeout is not None:
            updates["timeout_seconds"] = args.timeout
        if args.retries is not None:
            updates["retries"] = args.retries
        import dataclasses

        policy = dataclasses.replace(policy, **updates)
    runner = SweepRunner(
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        policy=policy,
    )

    checkpoint = None
    if runner.cache is not None:
        keys = [spec_key(spec) for spec in specs]
        checkpoint = SweepCheckpoint.for_keys(runner.cache.root, keys)
        if args.resume:
            if not checkpoint.exists():
                raise ConfigError(
                    "no interrupted sweep to resume (checkpoint "
                    f"{checkpoint.sweep_id[:12]} not found); run without "
                    "--resume to start it"
                )
            done = len(checkpoint.completed_keys() & set(keys))
            print(
                f"resuming sweep {checkpoint.sweep_id[:12]}: "
                f"{done}/{len(set(keys))} runs already checkpointed"
            )
    elif args.resume:
        raise ConfigError("--resume needs the run cache (drop --no-cache)")

    results, stats = runner.run(
        specs, on_failure="return", checkpoint=checkpoint
    )

    print(f"{'workload':>8} {'gpns':>4} {'source':>8} {'time(ms)':>10} {'GTEPS':>8}")
    failures = []
    for (workload, gpns, source), run in zip(rows, results):
        src = "-" if source is None else str(source)
        if isinstance(run, RunFailure):
            failures.append(run)
            print(
                f"{workload:>8} {gpns:>4} {src:>8} "
                f"{'FAILED':>10} {run.kind:>8}"
            )
            continue
        print(
            f"{workload:>8} {gpns:>4} {src:>8} "
            f"{run.elapsed_seconds * 1e3:>10.4f} {run.gteps:>8.2f}"
        )
    print(stats)
    if stats.failed or stats.retried:
        print(FAULT_COUNTERS.render())
        seen = set()
        for failure in failures:
            if failure.key in seen:
                continue
            seen.add(failure.key)
            print(f"  failed: {failure.describe()}")
    if checkpoint is not None:
        if stats.failed:
            print(
                f"checkpoint kept ({checkpoint.sweep_id[:12]}); fix and "
                "rerun with --resume to recompute only unfinished runs"
            )
        else:
            checkpoint.finish()
    return 1 if stats.failed else 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.obs import (
        FAULT_COUNTERS,
        BottleneckReport,
        ObsConfig,
        make_recorder,
        trace_span,
    )

    graph = build_graph(args.graph, seed=args.seed)
    workload = args.workload
    if workload == "sssp" and not graph.has_weights:
        graph = with_uniform_weights(graph, seed=args.seed)
    if workload == "cc":
        graph = graph.symmetrized()

    source: Optional[int] = None
    if workload not in ("cc", "pr"):
        source = (
            int(np.argmax(graph.out_degrees()))
            if args.source is None
            else args.source
        )
    kwargs = {}
    if workload == "pr":
        kwargs["max_supersteps"] = args.pr_supersteps

    obs = ObsConfig(
        timeline=True,
        timeline_capacity=args.timeline_capacity,
        phases=not args.no_phases,
        phase_sample_every=args.phase_every,
    )
    recorder = make_recorder(obs)
    config = scaled_config(num_gpns=args.gpns, scale=args.scale)
    system = NovaSystem(
        config, graph, placement=args.placement, engine=args.engine
    )
    print(system.describe())
    with trace_span("cli.profile", workload=workload, graph=args.graph):
        run = system.run(workload, source=source, recorder=recorder, **kwargs)
    print(run.describe())
    print()
    report = BottleneckReport.from_timeline(run.timeline)
    print(report.render())
    profiler = recorder.phase_profiler
    if profiler is not None:
        print()
        print(profiler.render())
    # Sweep-level fault/retry/timeout accounting (nonzero only when this
    # process also drove instrumented sweeps, e.g. via the runner API).
    print(FAULT_COUNTERS.render())
    if args.json:
        payload = {
            "report": report.to_dict(),
            "timeline": run.timeline,
            "phases": profiler.to_dict() if profiler is not None else None,
            "fault_counters": FAULT_COUNTERS.snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = build_graph(args.kind, seed=args.seed)
    if args.weights:
        graph = with_uniform_weights(graph, seed=args.seed)
    if args.out.endswith(".npz"):
        graph_io.save_npz(graph, args.out)
    elif args.out.endswith(".gr"):
        graph_io.save_dimacs(graph, args.out)
    else:
        graph_io.save_edge_list(graph, args.out)
    print(f"wrote {graph} to {args.out}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    config = scaled_config(num_gpns=args.gpns, scale=args.scale)
    print(f"NOVA configuration (Table II, scale {args.scale:g}):")
    print(f"  GPNs x PEs:        {config.num_gpns} x {config.pes_per_gpn}")
    print(f"  frequency:         {config.frequency_hz / 1e9:.1f} GHz")
    print(f"  cache / PE:        {bytes_to_human(config.cache_bytes_per_pe)}")
    print(
        f"  vertex channel:    {bytes_to_human(config.vertex_channel.capacity_bytes)}"
        f" @ {rate_to_human(config.vertex_channel.peak_bandwidth)}"
    )
    print(
        f"  edge pool / GPN:   {bytes_to_human(config.edge_pool.capacity_bytes)}"
        f" @ {rate_to_human(config.edge_pool.peak_bandwidth)}"
    )
    print(
        f"  FUs / GPN:         {config.reduce_fus_per_gpn} reduce + "
        f"{config.propagate_fus_per_gpn} propagate"
    )
    print(
        f"  tracker:           superblock_dim={config.superblock_dim}, "
        f"{config.tracker_capacity_bits() / 8 / 1024:.1f} KiB per PE "
        f"(Eq 1-2)"
    )
    print(
        f"  on-chip / GPN:     {bytes_to_human(config.onchip_bytes_per_gpn())}"
    )
    return 0


def _cmd_resources(args: argparse.Namespace) -> int:
    print("Resources to support WDC12 (Table IV):")
    for row in terascale_requirements():
        print("  " + row.row())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import validate_all

    graph = build_graph(args.graph, seed=args.seed)
    reports = validate_all(graph, scale=args.scale)
    failed = 0
    for report in reports:
        print(report.summary())
        if not report.passed:
            failed += 1
    print(
        f"{len(reports) - failed}/{len(reports)} workloads validated "
        "across functional/NOVA/PolyGraph/Ligra"
    )
    return 1 if failed else 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NOVA graph-accelerator reproduction (HPCA 2025)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate a workload")
    run.add_argument("--system", choices=("nova", "polygraph", "ligra"),
                     default="nova")
    run.add_argument("--workload", choices=("bfs", "cc", "sssp", "pr", "bc"),
                     default="bfs")
    run.add_argument("--graph", default="rmat:14:16",
                     help="graph specifier (see --help header)")
    run.add_argument("--gpns", type=int, default=1)
    run.add_argument("--scale", type=float, default=1 / 256,
                     help="capacity scale vs Table II")
    run.add_argument("--placement", default="random",
                     choices=("interleave", "random", "load_balanced",
                              "locality"))
    run.add_argument("--vmu-mode", default="tracker",
                     choices=("tracker", "fifo"))
    run.add_argument("--onchip", default=None,
                     help="PolyGraph on-chip size, e.g. 128KiB")
    run.add_argument("--source", type=int, default=None,
                     help="source vertex (default: highest out-degree)")
    run.add_argument("--pr-supersteps", type=int, default=10)
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--verify", action="store_true",
                     help="check results against the sequential oracle")
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep",
        help="run a cached, process-parallel sweep of NOVA simulations",
    )
    sweep.add_argument("--graph", default="rmat:14:16",
                       help="graph specifier (see --help header)")
    sweep.add_argument("--workloads", default="bfs",
                       help="comma-separated, e.g. bfs,sssp,pr")
    sweep.add_argument("--gpns", default="1",
                       help="comma-separated GPN counts, e.g. 1,2,4,8")
    sweep.add_argument("--sources", type=int, default=4,
                       help="sampled sources per traversal workload")
    sweep.add_argument("--scale", type=float, default=1 / 256)
    sweep.add_argument("--placement", default="random",
                       choices=("interleave", "random", "load_balanced",
                                "locality"))
    sweep.add_argument("--pr-supersteps", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=42)
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_WORKERS or "
                            "cpu count)")
    sweep.add_argument("--cache-dir", default=None,
                       help="run-cache root (default: REPRO_CACHE_DIR or "
                            "~/.cache/repro-nova)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="recompute every run and store nothing")
    sweep.add_argument("--resume", action="store_true",
                       help="resume an interrupted sweep: require its "
                            "checkpoint and recompute only unfinished runs")
    sweep.add_argument("--timeout", type=float, default=None,
                       help="per-run wall-clock timeout in seconds "
                            "(default: REPRO_RUN_TIMEOUT or none)")
    sweep.add_argument("--retries", type=int, default=None,
                       help="extra attempts for transient failures "
                            "(default: REPRO_RUN_RETRIES or 1)")
    sweep.set_defaults(func=_cmd_sweep)

    prof = sub.add_parser(
        "profile",
        help="run one instrumented NOVA simulation and attribute its time",
    )
    prof.add_argument("--workload", choices=("bfs", "cc", "sssp", "pr", "bc"),
                      default="bfs")
    prof.add_argument("--graph", default="rmat:12:8",
                      help="graph specifier (see --help header)")
    prof.add_argument("--gpns", type=int, default=1)
    prof.add_argument("--scale", type=float, default=1 / 256,
                      help="capacity scale vs Table II")
    prof.add_argument("--placement", default="random",
                      choices=("interleave", "random", "load_balanced",
                               "locality"))
    prof.add_argument("--engine", default="vectorized",
                      choices=("vectorized", "scalar"))
    prof.add_argument("--source", type=int, default=None,
                      help="source vertex (default: highest out-degree)")
    prof.add_argument("--pr-supersteps", type=int, default=10)
    prof.add_argument("--seed", type=int, default=42)
    prof.add_argument("--timeline-capacity", type=int, default=4096,
                      help="ring-buffer quanta kept in the timeline")
    prof.add_argument("--phase-every", type=int, default=16,
                      help="sample wall-time one quantum in every N")
    prof.add_argument("--no-phases", action="store_true",
                      help="skip wall-clock phase profiling")
    prof.add_argument("--json", default="repro_profile.json",
                      help="JSON export path ('' to skip)")
    prof.set_defaults(func=_cmd_profile)

    gen = sub.add_parser("generate", help="build and save a graph")
    gen.add_argument("--kind", required=True, help="graph specifier")
    gen.add_argument("--out", required=True, help=".npz / .gr / .txt path")
    gen.add_argument("--weights", action="store_true")
    gen.add_argument("--seed", type=int, default=42)
    gen.set_defaults(func=_cmd_generate)

    info = sub.add_parser("info", help="print the system configuration")
    info.add_argument("--gpns", type=int, default=1)
    info.add_argument("--scale", type=float, default=1.0)
    info.set_defaults(func=_cmd_info)

    res = sub.add_parser("resources", help="Table IV terascale sizing")
    res.set_defaults(func=_cmd_resources)

    val = sub.add_parser(
        "validate",
        help="run every workload on every engine and check the oracles",
    )
    val.add_argument("--graph", default="rmat:11:8", help="graph specifier")
    val.add_argument("--scale", type=float, default=1 / 256)
    val.add_argument("--seed", type=int, default=42)
    val.set_defaults(func=_cmd_validate)
    return parser


def main(argv: Optional[list] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
