"""Baseline systems the paper compares NOVA against.

- :mod:`repro.baselines.polygraph` -- PolyGraph [13] in its most
  optimized S_s / A_c / T_w variant: Gemini-style temporal slices,
  on-chip replica coalescing, work-aware slice scheduling, with the
  three switching-cost components of Section II-C charged explicitly.
- :mod:`repro.baselines.ligra` -- the Ligra software framework [41]
  as an analytic cost model over real frontier traces (Fig 4's software
  reference).
- :mod:`repro.baselines.dalorex` -- Dalorex [34] resource model
  (on-chip-only storage; Table IV).
"""

from repro.baselines.slicing import TemporalSlicing
from repro.baselines.polygraph import PolyGraphConfig, PolyGraphSystem
from repro.baselines.ligra import LigraConfig, LigraModel
from repro.baselines.dalorex import dalorex_requirements

__all__ = [
    "TemporalSlicing",
    "PolyGraphConfig",
    "PolyGraphSystem",
    "LigraConfig",
    "LigraModel",
    "dalorex_requirements",
]
