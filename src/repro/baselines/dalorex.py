"""Dalorex [34] resource model (Table IV).

Dalorex eliminates off-chip memory entirely: the whole graph (vertices
*and* edges) lives in distributed on-chip SRAM, tiled across a sea of
tiny cores (256-4096 per node), roughly 4 MiB of SRAM per core.  It
never needs temporal slicing, but the SRAM bill for terascale graphs is
enormous -- the point Table IV makes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import MiB


@dataclass(frozen=True)
class DalorexRequirements:
    """On-chip resources Dalorex needs for one graph."""

    sram_bytes: int
    cores: int
    slices: int = 1  # data-local execution never time-multiplexes


def dalorex_requirements(
    num_vertices: int,
    num_edges: int,
    vertex_bytes: int = 16,
    edge_bytes: int = 8,
    sram_per_core: int = 4 * MiB,
) -> DalorexRequirements:
    """Resources to hold a graph entirely on-chip, Dalorex-style."""
    if num_vertices < 0 or num_edges < 0:
        raise ConfigError("graph sizes must be non-negative")
    if sram_per_core <= 0:
        raise ConfigError("sram_per_core must be positive")
    footprint = num_vertices * vertex_bytes + num_edges * edge_bytes
    cores = max(1, -(-footprint // sram_per_core))
    return DalorexRequirements(sram_bytes=footprint, cores=cores)
