"""Ligra [41] software baseline as an analytic cost model.

The paper compares against Ligra on an 8-core x86 with a 32 MiB L3 and
400 GB/s of memory bandwidth (Section V).  Rather than re-implementing a
multicore runtime, this model drives the exact functional execution
(:mod:`repro.workloads.driver` semantics) round by round and prices each
round with Ligra's direction-optimizing cost structure:

- **push**: traverse the frontier's out-edges; every edge pays the edge
  read plus a probabilistic cache-line miss on the random destination
  vertex (miss probability grows as the vertex set outgrows the L3).
- **pull**: scan all vertices' in-edges (dense frontiers); sequential
  vertex access, every edge read once.
- each round additionally pays a parallel-for synchronization cost, which
  is what makes high-diameter graphs (RoadUSA) disproportionately slow on
  CPUs -- the effect visible in Fig 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.graph.csr import CSRGraph
from repro.core.metrics import RunResult
from repro.sim.stats import StatGroup
from repro.units import GB, MiB
from repro.workloads import get_workload
from repro.workloads.base import VertexProgram, expand_edges


@dataclass(frozen=True)
class LigraConfig:
    """The paper's software platform (Section V)."""

    cores: int = 8
    frequency_hz: float = 3e9
    l3_bytes: int = 32 * MiB
    memory_bandwidth: float = 400 * GB
    vertex_bytes: int = 16
    edge_bytes: int = 8
    cache_line_bytes: int = 64
    #: Instructions retired per edge traversal (compute-bound ceiling).
    instructions_per_edge: float = 12.0
    #: Fork/join barrier cost per frontier round.
    sync_overhead_s: float = 5e-6
    #: Dense-frontier threshold for direction switching (|frontier
    #: edges| > E / threshold_divisor switches to pull).
    threshold_divisor: int = 20

    @property
    def compute_rate(self) -> float:
        """Edges per second at the compute-bound ceiling."""
        return self.cores * self.frequency_hz / self.instructions_per_edge


class LigraModel:
    """Frontier-driven analytic execution of one workload."""

    def __init__(self, config: LigraConfig, graph: CSRGraph) -> None:
        self.config = config
        self.graph = graph

    def _miss_probability(self) -> float:
        """Chance a random vertex access misses the L3."""
        footprint = self.graph.num_vertices * self.config.vertex_bytes
        if footprint <= self.config.l3_bytes:
            return 0.0
        return 1.0 - self.config.l3_bytes / footprint

    def _round_time(self, frontier_edges: int) -> float:
        config = self.config
        p_miss = self._miss_probability()
        push_bytes = frontier_edges * (
            config.edge_bytes + p_miss * config.cache_line_bytes
        )
        push_time = max(
            push_bytes / config.memory_bandwidth,
            frontier_edges / config.compute_rate,
        )
        pull_edges = self.graph.num_edges
        pull_bytes = pull_edges * config.edge_bytes + (
            self.graph.num_vertices * config.vertex_bytes
        )
        pull_time = max(
            pull_bytes / config.memory_bandwidth,
            pull_edges / config.compute_rate,
        )
        dense = frontier_edges * config.threshold_divisor > self.graph.num_edges
        return (pull_time if dense and pull_time < push_time else push_time) + (
            config.sync_overhead_s
        )

    def run(
        self,
        workload: Union[str, VertexProgram],
        source: Optional[int] = None,
        compute_reference: bool = False,
        **workload_kwargs,
    ) -> RunResult:
        """Execute one workload; exact results, modelled time."""
        program = (
            get_workload(workload, **workload_kwargs)
            if isinstance(workload, str)
            else workload
        )
        program.check_graph(self.graph)
        state = program.create_state(self.graph, source)
        active = np.unique(program.initial_active(state))
        elapsed = 0.0
        rounds = 0
        edges_traversed = 0
        messages = 0
        useful = 0
        while active.shape[0]:
            rounds += 1
            prop_graph = program.propagation_graph(state)
            values = program.snapshot(state, active)
            owner, dests, weights = expand_edges(prop_graph, active)
            frontier_edges = int(dests.shape[0])
            edges_traversed += frontier_edges
            elapsed += self._round_time(frontier_edges)
            if frontier_edges:
                msg_values = program.propagate_values(state, values[owner], weights)
                messages += frontier_edges
                outcome = program.reduce(state, dests, msg_values)
                useful += outcome.useful_messages
            else:
                outcome = None
            if program.mode == "bsp":
                active = np.unique(program.superstep_end(state))
            else:
                active = (
                    np.unique(outcome.improved)
                    if outcome is not None
                    else np.empty(0, dtype=np.int64)
                )
        stats = StatGroup("ligra")
        stats.set("rounds", rounds)
        stats.set("miss_probability", self._miss_probability())
        reference_edges = None
        if compute_reference:
            from repro.core.system import verify_result

            expected, reference_edges = program.reference(self.graph, source)
            verify_result(program.name, program.result(state), expected)
        return RunResult(
            workload=program.name,
            system="ligra",
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            result=program.result(state),
            elapsed_seconds=elapsed,
            quanta=rounds,
            edges_traversed=edges_traversed,
            messages_sent=messages,
            messages_processed=messages,
            useful_messages=useful,
            redundant_messages=messages - useful,
            coalesced_messages=0,
            activations=0,
            breakdown={"processing": elapsed},
            traffic={},
            utilization={},
            stats=stats,
            reference_edges=reference_edges,
        )
