"""PolyGraph [13] behavioural model: temporal slicing with on-chip state.

The paper's baseline (Section V) is PolyGraph's most optimized variant:

- **S_s** -- temporal slicing: Gemini-style contiguous-id slices sized so
  one slice's property state fits in the 32 MiB on-chip memory.
- **A_c** -- asynchronous execution: while a slice is resident its
  vertices live on-chip (vertex accesses cost no DRAM traffic) and
  improved vertices propagate *eagerly* in the same residency -- the
  small coalescing window the paper contrasts with NOVA's DRAM-wide
  window (Fig 5).
- **T_w** -- work-aware scheduling: the next resident slice is the one
  with the most pending work.

Updates destined to **non-resident** slices cannot be applied on-chip:
they are spilled to per-slice FIFO queues in off-chip memory and read
back when their slice becomes resident.  This is exactly the "off-chip
buffer" spilling method of Table I -- one write and one read per
message, no coalescing in the buffer -- and it is what makes temporal
partitioning's overhead grow with slice count: for k id-chunk slices a
fraction ~(k-1)/k of a random graph's edges cross slices.

Each slice switch additionally streams the leaving slice's property
state out and the entering slice's in (Section II-C's switching cost).
Timing is analytic per residency over the single iso-bandwidth memory
pool; re-entries into a slice count toward *inefficiency overhead*
(Fig 2 / Fig 6 breakdowns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.errors import SimulationError
from repro.graph.csr import CSRGraph
from repro.graph.suites import SLICE_PROPERTY_BYTES
from repro.baselines.slicing import TemporalSlicing
from repro.core.metrics import RunResult
from repro.core.queues import MessageQueue
from repro.core.system import verify_result
from repro.memory.spec import MemorySpec
from repro.sim.stats import StatGroup
from repro.units import GB, MiB
from repro.workloads import get_workload
from repro.workloads.base import VertexProgram, expand_edges


def polygraph_memory(bandwidth: float = 332.8 * GB) -> MemorySpec:
    """The iso-bandwidth unified memory pool of Fig 1 / Fig 4."""
    return MemorySpec(
        name="PG-memory",
        atom_bytes=32,
        capacity_bytes=2**40,
        peak_bandwidth=bandwidth,
        random_efficiency=0.80,
        sequential_efficiency=0.85,
        latency_s=80e-9,
    )


@dataclass(frozen=True)
class PolyGraphConfig:
    """Static configuration of the PolyGraph baseline."""

    onchip_bytes: int = 32 * MiB
    memory: MemorySpec = field(default_factory=polygraph_memory)
    frequency_hz: float = 2e9
    reduce_fus: int = 16
    propagate_fus: int = 48
    vertex_bytes: int = 16
    edge_bytes: int = 8
    message_bytes: int = 8
    property_bytes: int = SLICE_PROPERTY_BYTES
    #: Fixed pipeline-drain/refill cost per slice switch.
    switch_latency_s: float = 1e-6
    #: Latency of one eager processing round inside a residency.
    round_latency_s: float = 100e-9
    #: FIFO messages staged on-chip per eager processing round.  The
    #: off-chip buffer method has no coalescing (Table I): messages are
    #: read back and applied in bounded chunks, and a vertex improved
    #: across chunks propagates once per chunk -- the eager behaviour
    #: whose redundant messages Fig 5 charges against PolyGraph.
    fifo_chunk_messages: int = 16384

    @property
    def reduce_rate(self) -> float:
        return self.reduce_fus * self.frequency_hz

    @property
    def propagate_rate(self) -> float:
        return self.propagate_fus * self.frequency_hz


class PolyGraphEngine:
    """One PolyGraph execution of a vertex program."""

    def __init__(
        self,
        config: PolyGraphConfig,
        graph: CSRGraph,
        program: VertexProgram,
        source: Optional[int] = None,
        num_slices: Optional[int] = None,
        max_residencies: int = 5_000_000,
    ) -> None:
        program.check_graph(graph)
        self.config = config
        self.graph = graph
        self.program = program
        self.source = source
        self.max_residencies = max_residencies
        self.slicing = TemporalSlicing(
            graph, config.onchip_bytes, config.property_bytes, num_slices
        )
        self.state = program.create_state(graph, source)
        n = graph.num_vertices
        s = self.slicing.num_slices
        self.pending = np.zeros(n, dtype=bool)
        self._pending_backlog: List[List[np.ndarray]] = [[] for _ in range(s)]
        self.pending_count = np.zeros(s, dtype=np.int64)
        #: Per-slice off-chip FIFO message queues (Table I, left column).
        self.queues = [MessageQueue() for _ in range(s)]
        self.queue_sizes = np.zeros(s, dtype=np.int64)
        self.visited = np.zeros(s, dtype=bool)

        # Time and traffic accumulators.
        self.processing_s = 0.0
        self.switching_s = 0.0
        self.inefficiency_s = 0.0
        self.edge_bytes = 0
        self.slice_state_bytes = 0
        self.fifo_bytes = 0

        # Work counters.
        self.edges_traversed = 0
        self.messages_processed = 0
        self.messages_sent = 0
        self.useful_messages = 0
        self.coalesced = 0
        self.activations = 0
        self.residencies = 0
        self.slice_switches = 0
        self._current_slice: Optional[int] = None
        self.stats = StatGroup("polygraph")

    # ------------------------------------------------------------------
    # Work bookkeeping
    # ------------------------------------------------------------------

    def _inject_pending(self, vertices: np.ndarray) -> None:
        """Mark vertices as awaiting propagation in their slices."""
        fresh = vertices[~self.pending[vertices]]
        if fresh.shape[0] == 0:
            return
        self.pending[fresh] = True
        self.activations += int(fresh.shape[0])
        slices = self.slicing.slice_of(fresh)
        np.add.at(self.pending_count, slices, 1)
        order = np.argsort(slices, kind="stable")
        fresh, slices = fresh[order], slices[order]
        boundaries = np.flatnonzero(np.diff(slices)) + 1
        for segment in np.split(fresh, boundaries):
            if segment.shape[0]:
                sl = int(self.slicing.slice_of(segment[:1])[0])
                self._pending_backlog[sl].append(segment)

    def _enqueue_remote(self, dests: np.ndarray, values: np.ndarray) -> None:
        """Spill cross-slice messages to their slices' DRAM FIFOs.

        One write per message, no coalescing (Table I): the FIFO grows
        with every cross-slice update, and each entry is individually
        read back and reduced when its slice becomes resident.
        """
        slices = self.slicing.slice_of(dests)
        order = np.argsort(slices, kind="stable")
        dests, values, slices = dests[order], values[order], slices[order]
        boundaries = np.flatnonzero(np.diff(slices)) + 1
        for seg in np.split(np.arange(dests.shape[0]), boundaries):
            if seg.shape[0] == 0:
                continue
            sl = int(slices[seg[0]])
            self.queues[sl].push(dests[seg], values[seg])
            self.queue_sizes[sl] += seg.shape[0]
        nbytes = int(dests.shape[0]) * self.config.message_bytes
        self.fifo_bytes += nbytes
        self.switching_s += nbytes / self.config.memory.sequential_bandwidth

    def _drain_pending(self, sl: int) -> np.ndarray:
        """Pop the deduplicated, still-pending ids of one slice's backlog."""
        if not self._pending_backlog[sl]:
            return np.empty(0, dtype=np.int64)
        ids = np.unique(np.concatenate(self._pending_backlog[sl]))
        self._pending_backlog[sl].clear()
        ids = ids[self.pending[ids]]
        self.pending[ids] = False
        return ids

    def _has_work(self) -> bool:
        return bool(self.pending_count.any() or self.queue_sizes.any())

    def _next_slice(self) -> int:
        """T_w scheduling: the slice with the most pending work."""
        return int(np.argmax(self.pending_count + self.queue_sizes))

    # ------------------------------------------------------------------
    # Residency
    # ------------------------------------------------------------------

    def _switch_to(self, sl: int) -> None:
        """Charge Section II-C's slice-state streaming costs."""
        config = self.config
        if self._current_slice is None:
            self._current_slice = sl
            return
        if self._current_slice == sl:
            return
        nbytes = int(
            self.slicing.vertices_per_slice[self._current_slice]
            + self.slicing.vertices_per_slice[sl]
        ) * config.property_bytes
        self.slice_state_bytes += nbytes
        self.switching_s += (
            nbytes / config.memory.sequential_bandwidth + config.switch_latency_s
        )
        self.slice_switches += 1
        self._current_slice = sl

    def _residency(self, sl: int) -> None:
        config = self.config
        program, state = self.program, self.state
        prop_graph = program.propagation_graph(state)
        slice_of = self.slicing.slice_of

        ready = self._drain_pending(sl)
        self.pending_count[sl] = 0

        rounds = 0
        res_edges = 0
        res_reduces = 0
        revisit = bool(self.visited[sl])
        msgs_dest = np.empty(0, dtype=np.int64)
        msgs_val = np.empty(0)

        while msgs_dest.shape[0] or ready.shape[0] or len(self.queues[sl]):
            rounds += 1
            if msgs_dest.shape[0] == 0 and len(self.queues[sl]):
                # Stage the next bounded chunk of spilled messages from
                # the slice's DRAM FIFO (no coalescing in the buffer).
                msgs_dest, msgs_val = self.queues[sl].pop(
                    config.fifo_chunk_messages
                )
                self.queue_sizes[sl] = len(self.queues[sl])
                fifo_read = msgs_dest.shape[0] * config.message_bytes
                self.fifo_bytes += fifo_read
                self.switching_s += (
                    fifo_read / config.memory.sequential_bandwidth
                )
            if msgs_dest.shape[0]:
                # Messages landing on an already-pending vertex coalesce
                # (the only coalescing PolyGraph's eager pipeline gets).
                self.coalesced += int(
                    np.count_nonzero(self.pending[msgs_dest])
                )
                outcome = program.reduce(state, msgs_dest, msgs_val)
                res_reduces += msgs_dest.shape[0]
                self.messages_processed += msgs_dest.shape[0]
                self.useful_messages += outcome.useful_messages
                improved = outcome.improved
                if improved.shape[0]:
                    newly = improved[~self.pending[improved]]
                    self.pending[newly] = True
                    self.activations += int(newly.shape[0])
                    ready = np.concatenate([ready, newly])
                msgs_dest = np.empty(0, dtype=np.int64)
                msgs_val = np.empty(0)
            if ready.shape[0]:
                # A vertex drained from the backlog and re-improved by a
                # FIFO message in the same residency appears twice; the
                # task queue's present-bits deduplicate it (and harvest-
                # style snapshots such as PR-delta's must run once).
                vertices = np.unique(ready)
                ready = np.empty(0, dtype=np.int64)
                self.pending[vertices] = False
                values = program.snapshot(state, vertices)
                owner_idx, dests, weights = expand_edges(prop_graph, vertices)
                nedges = int(dests.shape[0])
                res_edges += nedges
                self.edges_traversed += nedges
                self.messages_sent += nedges
                if nedges == 0:
                    continue
                out_values = program.propagate_values(
                    state, values[owner_idx], weights
                )
                intra = slice_of(dests) == sl
                if intra.any():
                    msgs_dest = dests[intra]
                    msgs_val = out_values[intra]
                remote = ~intra
                if remote.any():
                    self._enqueue_remote(dests[remote], out_values[remote])

        edge_stream_s = (
            res_edges * config.edge_bytes / config.memory.sequential_bandwidth
        )
        fu_s = max(
            res_edges / config.propagate_rate, res_reduces / config.reduce_rate
        )
        res_time = max(edge_stream_s, fu_s) + rounds * config.round_latency_s
        if revisit:
            self.inefficiency_s += res_time
        else:
            self.processing_s += res_time
        self.visited[sl] = True
        self.edge_bytes += res_edges * config.edge_bytes
        self.residencies += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> RunResult:
        if self.program.mode == "bsp":
            self._run_bsp()
        else:
            self._run_async()
        return self._build_result()

    def _run_async(self) -> None:
        self._inject_pending(np.unique(self.program.initial_active(self.state)))
        while self._has_work():
            self._check_quota()
            sl = self._next_slice()
            self._switch_to(sl)
            self._residency(sl)

    def _run_bsp(self) -> None:
        supersteps = 0
        active = np.unique(self.program.initial_active(self.state))
        while active.shape[0]:
            self._inject_pending(active)
            while self._has_work():
                self._check_quota()
                sl = self._next_slice()
                self._switch_to(sl)
                self._residency(sl)
            active = np.unique(self.program.superstep_end(self.state))
            supersteps += 1
        self.stats.set("supersteps", supersteps)

    def _check_quota(self) -> None:
        if self.residencies >= self.max_residencies:
            raise SimulationError(
                f"exceeded {self.max_residencies} residencies; stuck"
            )

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        elapsed = self.processing_s + self.switching_s + self.inefficiency_s
        breakdown = {
            "processing": self.processing_s,
            "switching": self.switching_s,
            "inefficiency": self.inefficiency_s,
        }
        traffic = {
            "edge_bytes": self.edge_bytes,
            "slice_state_bytes": self.slice_state_bytes,
            "fifo_bytes": self.fifo_bytes,
        }
        total_bytes = self.edge_bytes + self.slice_state_bytes + self.fifo_bytes
        busy = total_bytes / self.config.memory.sequential_bandwidth
        stats = self.stats
        stats.set("slices", self.slicing.num_slices)
        stats.set("residencies", self.residencies)
        stats.set("slice_switches", self.slice_switches)
        stats.set("elapsed_seconds", elapsed)
        return RunResult(
            workload=self.program.name,
            system="polygraph",
            num_vertices=self.graph.num_vertices,
            num_edges=self.graph.num_edges,
            result=self.program.result(self.state),
            elapsed_seconds=elapsed,
            quanta=self.residencies,
            edges_traversed=self.edges_traversed,
            messages_sent=self.messages_sent,
            messages_processed=self.messages_processed,
            useful_messages=self.useful_messages,
            redundant_messages=self.messages_processed - self.useful_messages,
            coalesced_messages=self.coalesced,
            activations=self.activations,
            breakdown=breakdown,
            traffic=traffic,
            utilization={
                "memory": min(1.0, busy / elapsed) if elapsed > 0 else 0.0
            },
            stats=stats,
        )


class PolyGraphSystem:
    """Public wrapper mirroring :class:`repro.core.system.NovaSystem`."""

    def __init__(
        self,
        config: PolyGraphConfig,
        graph: CSRGraph,
        num_slices: Optional[int] = None,
    ) -> None:
        self.config = config
        self.graph = graph
        self.num_slices = num_slices

    def run(
        self,
        workload: Union[str, VertexProgram],
        source: Optional[int] = None,
        compute_reference: bool = False,
        **workload_kwargs,
    ) -> RunResult:
        program = (
            get_workload(workload, **workload_kwargs)
            if isinstance(workload, str)
            else workload
        )
        engine = PolyGraphEngine(
            self.config, self.graph, program, source=source,
            num_slices=self.num_slices,
        )
        run = engine.run()
        if compute_reference:
            expected, reference_edges = program.reference(self.graph, source)
            run.reference_edges = reference_edges
            verify_result(program.name, run.result, expected)
        return run
