"""Temporal partitioning: Gemini-style id-chunk slices (Section II-C).

PolyGraph (and the overhead study of Fig 2) partitions the vertex set
into contiguous id ranges sized so one slice's property state fits
on-chip -- the low-cost method of Gemini [59] that needs no
preprocessing.  This module computes slice membership, per-slice vertex
counts, and the replica sets that drive switching costs:

- a vertex ``w`` of slice ``t`` is *replicated* in slice ``s != t`` iff
  some vertex of ``s`` has an edge to ``w`` (slice ``s`` keeps a local
  accumulator copy of ``w`` so remote updates coalesce on-chip);
- ``replicas_of_slice[t]`` counts distinct vertices of ``t`` replicated
  anywhere -- these must be read back when ``t`` becomes resident
  (switching cost component 3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.suites import SLICE_PROPERTY_BYTES, temporal_slices


class TemporalSlicing:
    """Contiguous-id temporal slices over one graph."""

    def __init__(
        self,
        graph: CSRGraph,
        onchip_bytes: int,
        property_bytes: int = SLICE_PROPERTY_BYTES,
        num_slices: int | None = None,
    ) -> None:
        if num_slices is None:
            num_slices = temporal_slices(
                graph.num_vertices, onchip_bytes, property_bytes
            )
        if num_slices <= 0:
            raise PartitionError("need at least one slice")
        self.graph = graph
        self.num_slices = num_slices
        self.slice_size = -(-graph.num_vertices // num_slices)
        self._slice_of = np.minimum(
            np.arange(graph.num_vertices, dtype=np.int64) // self.slice_size,
            num_slices - 1,
        )
        self.vertices_per_slice = np.bincount(
            self._slice_of, minlength=num_slices
        )
        self._replicas = None

    def slice_of(self, vertices: np.ndarray) -> np.ndarray:
        return self._slice_of[vertices]

    @property
    def replicas_of_slice(self) -> np.ndarray:
        """Distinct replicated vertices per destination slice (lazy)."""
        if self._replicas is None:
            src_slice = self._slice_of[self.graph.edge_sources()]
            dst = self.graph.col_idx
            dst_slice = self._slice_of[dst]
            cross = src_slice != dst_slice
            # Distinct (source slice, destination vertex) pairs, counted by
            # the destination's slice.
            pairs = np.unique(
                src_slice[cross] * np.int64(self.graph.num_vertices)
                + dst[cross]
            )
            dest_vertices = pairs % self.graph.num_vertices
            self._replicas = np.bincount(
                self._slice_of[dest_vertices], minlength=self.num_slices
            )
        return self._replicas

    def cross_edge_fraction(self) -> float:
        """Fraction of edges crossing slice boundaries."""
        if self.graph.num_edges == 0:
            return 0.0
        src_slice = self._slice_of[self.graph.edge_sources()]
        dst_slice = self._slice_of[self.graph.col_idx]
        return float(np.count_nonzero(src_slice != dst_slice)) / self.graph.num_edges
