"""Synthetic graph generators standing in for the paper's inputs.

Table III evaluates NOVA on RoadUSA, Twitter, Friendster, Host (WDC), and
Urand.  None of those datasets ship with this repository, so we generate
synthetic graphs with the same *structural archetypes*:

- :func:`road_grid` -- high diameter, tiny uniform degree (RoadUSA).
- :func:`power_law` -- heavy-tailed degree distribution via the Chung-Lu
  model (Twitter, Friendster, Host are all scale-free social/web graphs).
- :func:`rmat` -- Kronecker/R-MAT graphs, the paper's weak-scaling input
  (RMAT21-24) and the classic Graph500 generator.
- :func:`uniform_random` -- Erdos-Renyi multigraphs (the paper's "Urand").

All generators take an explicit seed and are deterministic for a given
(numpy version, seed) pair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_random(
    num_vertices: int, num_edges: int, seed: int = 1, dedup: bool = False
) -> CSRGraph:
    """Erdos-Renyi style multigraph: every edge picks endpoints uniformly."""
    if num_vertices <= 0 or num_edges < 0:
        raise GraphFormatError("need positive vertices and non-negative edges")
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=dedup)


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 1,
    dedup: bool = False,
) -> CSRGraph:
    """R-MAT / Kronecker generator (Graph500 parameters by default).

    Generates ``edge_factor * 2**scale`` edges over ``2**scale`` vertices
    by recursively descending the adjacency matrix quadrants with
    probabilities (a, b, c, d = 1-a-b-c).
    """
    if scale <= 0 or scale > 30:
        raise GraphFormatError("scale must be in (0, 30]")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise GraphFormatError("quadrant probabilities must be non-negative")
    rng = _rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    # Descend one bit per level; vectorized over all edges at once.
    for level in range(scale):
        r = rng.random(num_edges)
        src_bit = (r >= a + b).astype(np.int64)
        # Within the chosen row half, pick the column half.
        upper_threshold = np.where(src_bit == 0, a / max(a + b, 1e-12), c / max(c + d, 1e-12))
        r2 = rng.random(num_edges)
        dst_bit = (r2 >= upper_threshold).astype(np.int64)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    # Permute vertex ids so high-degree vertices are not clustered at 0.
    perm = rng.permutation(num_vertices).astype(np.int64)
    return CSRGraph.from_edges(perm[src], perm[dst], num_vertices, dedup=dedup)


def power_law(
    num_vertices: int,
    avg_degree: float,
    exponent: float = 2.1,
    seed: int = 1,
    dedup: bool = False,
) -> CSRGraph:
    """Chung-Lu graph with a Pareto expected-degree sequence.

    Produces the heavy-tailed degree distributions of social and web
    graphs (Twitter-like for exponent around 2, flatter for larger).
    """
    if num_vertices <= 0:
        raise GraphFormatError("num_vertices must be positive")
    if avg_degree <= 0:
        raise GraphFormatError("avg_degree must be positive")
    if exponent <= 1.0:
        raise GraphFormatError("exponent must be > 1")
    rng = _rng(seed)
    # Pareto(alpha) has mean alpha/(alpha-1) for alpha>1; rescale to hit
    # the requested average degree, and cap at sqrt(V*E) to keep the
    # Chung-Lu edge probabilities valid.
    alpha = exponent - 1.0
    raw = rng.pareto(alpha, size=num_vertices) + 1.0
    weights = raw * (avg_degree / raw.mean())
    cap = np.sqrt(weights.sum())
    weights = np.minimum(weights, cap)
    num_edges = int(round(avg_degree * num_vertices))
    # Sample endpoints proportional to weight: inverse-CDF on the
    # cumulative weight vector.
    cum = np.cumsum(weights)
    cum /= cum[-1]
    src = np.searchsorted(cum, rng.random(num_edges)).astype(np.int64)
    dst = np.searchsorted(cum, rng.random(num_edges)).astype(np.int64)
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=dedup)


def road_grid(width: int, height: int, seed: int = 1, diagonal_fraction: float = 0.02) -> CSRGraph:
    """A road-network stand-in: 2-D grid plus a sprinkle of shortcut edges.

    Grids share RoadUSA's defining properties: degree ~4, enormous
    diameter, and sparse frontiers.  A small fraction of random shortcut
    edges mimics highways without collapsing the diameter.
    """
    if width <= 0 or height <= 0:
        raise GraphFormatError("grid dimensions must be positive")
    if not 0.0 <= diagonal_fraction < 1.0:
        raise GraphFormatError("diagonal_fraction must be in [0, 1)")
    num_vertices = width * height
    ids = np.arange(num_vertices, dtype=np.int64).reshape(height, width)
    horiz_src = ids[:, :-1].ravel()
    horiz_dst = ids[:, 1:].ravel()
    vert_src = ids[:-1, :].ravel()
    vert_dst = ids[1:, :].ravel()
    src = np.concatenate([horiz_src, horiz_dst, vert_src, vert_dst])
    dst = np.concatenate([horiz_dst, horiz_src, vert_dst, vert_src])
    if diagonal_fraction > 0:
        rng = _rng(seed)
        extra = int(diagonal_fraction * src.shape[0])
        shortcut_src = rng.integers(0, num_vertices, size=extra, dtype=np.int64)
        # Shortcuts connect to nearby rows to preserve the high diameter.
        offset = rng.integers(-3 * width, 3 * width, size=extra, dtype=np.int64)
        shortcut_dst = np.clip(shortcut_src + offset, 0, num_vertices - 1)
        src = np.concatenate([src, shortcut_src, shortcut_dst])
        dst = np.concatenate([dst, shortcut_dst, shortcut_src])
    return CSRGraph.from_edges(src, dst, num_vertices, dedup=True)


def with_uniform_weights(
    graph: CSRGraph, low: float = 1.0, high: float = 256.0, seed: int = 7
) -> CSRGraph:
    """Attach uniform random edge weights in [low, high) to a graph."""
    if low <= 0 or high <= low:
        raise GraphFormatError("need 0 < low < high")
    rng = _rng(seed)
    weights = rng.uniform(low, high, size=graph.num_edges)
    return CSRGraph(graph.row_ptr, graph.col_idx, weights)
