"""Content-addressed on-disk graph artifact store: build once, mmap everywhere.

Every sweep worker and service job used to materialize its graph from a
:class:`~repro.runner.spec.GraphSpec` recipe, memoized *per process* --
so N processes over one suite graph paid N redundant builds, and
nothing larger than RAM could run at all.  Following PartitionedVC's
partitioned external-memory design (PAPERS.md), this store makes the
graph build a one-time cost per host:

- **Artifacts** live under ``<root>/<digest[:2]>/<digest>/`` where the
  digest is a SHA-256 over the recipe (spec string, seed, scale,
  weighted/symmetrized flags, store schema, package version -- and for
  file-backed specs, the source file's size+mtime).  Each artifact
  directory holds ``row_ptr.npy`` / ``col_idx.npy`` (and ``weights.npy``
  for weighted graphs) as raw, 64-byte-aligned ``.npy`` files plus a
  ``manifest.json`` with magic, schema, per-array dtype/shape, and
  build provenance (package version, build seconds, creation time).
- **Loads** are zero-copy: arrays come back as read-only ``np.memmap``
  views wrapped in a :class:`~repro.graph.csr.CSRGraph` (structural
  validation is skipped -- the arrays were validated once at publish
  time and the manifest pins their shapes/dtypes).  The kernel page
  cache dedups the bytes across every process on the host, and graphs
  larger than RAM fault pages in on demand.
- **Publish** is atomic: arrays and manifest are written into a hidden
  temp directory and ``os.rename``d into place, so readers can never
  observe a torn artifact.  Concurrent builders serialize on a
  per-digest ``fcntl`` file lock: one process builds, the rest block
  and then map the published result.
- **Eviction** mirrors :class:`~repro.runner.cache.RunCache`:
  :meth:`GraphStore.prune` drops least-recently-mapped artifacts past a
  byte budget (``REPRO_GRAPH_STORE_MAX_BYTES`` applies it after each
  build), and a corrupt artifact (bad manifest, truncated array) is
  evicted on load and reads as a miss.

Environment knobs:

- ``REPRO_GRAPH_STORE``: set to ``0`` / ``false`` / ``off`` to bypass
  the store entirely (every build happens in process memory).
- ``REPRO_GRAPH_STORE_DIR``: artifact root (default:
  ``<REPRO_CACHE_DIR or ~/.cache/repro-nova>/graphs``).
- ``REPRO_GRAPH_STORE_MAX_BYTES``: LRU size cap applied after builds.

Counters (``graph_store.*`` in :data:`~repro.obs.counters.FAULT_COUNTERS`):
``hits``, ``misses``, ``builds``, ``build_ms``, ``lock_waits``,
``evictions``, ``corrupt``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import threading
import time
from typing import Any, Dict, Iterable, Iterator, Optional, Set, Tuple, Union

import numpy as np

from repro.errors import ConfigError, GraphFormatError
from repro.graph.csr import CSRGraph
from repro.obs.counters import FAULT_COUNTERS
from repro.obs.tracing import trace_event

try:  # POSIX cross-process locking; degrades to best-effort elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Bump when the digest recipe or artifact layout changes.
STORE_SCHEMA = 1

MANIFEST_MAGIC = "repro-graph-store-v1"
MANIFEST_NAME = "manifest.json"

#: Array files an artifact may contain, in manifest order.
ARRAY_NAMES = ("row_ptr", "col_idx", "weights")


def default_store_dir() -> str:
    """``REPRO_GRAPH_STORE_DIR`` if set, else ``<cache root>/graphs``."""
    env = os.environ.get("REPRO_GRAPH_STORE_DIR")
    if env:
        return env
    cache = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-nova"
    )
    return os.path.join(cache, "graphs")


def store_enabled() -> bool:
    """False when ``REPRO_GRAPH_STORE`` opts out of the artifact store."""
    value = os.environ.get("REPRO_GRAPH_STORE", "1").strip().lower()
    return value not in ("0", "false", "no", "off")


#: Digests pinned by live consumers (resident graph sessions) that
#: :meth:`GraphStore.prune` must never evict.  A freshly compacted
#: session artifact would otherwise race the LRU sweep: the publish and
#: the prune happen in different call stacks, so the single ``protect=``
#: argument cannot cover it.  Refcounted so two sessions pinning the
#: same base graph unpin independently.
_PROTECTED_DIGESTS: Dict[str, int] = {}
_PROTECTED_LOCK = threading.Lock()


def protect_digest(digest: str) -> None:
    """Pin ``digest`` against pruning until :func:`unprotect_digest`."""
    with _PROTECTED_LOCK:
        _PROTECTED_DIGESTS[digest] = _PROTECTED_DIGESTS.get(digest, 0) + 1


def unprotect_digest(digest: str) -> None:
    """Drop one pin on ``digest`` (no-op when it is not pinned)."""
    with _PROTECTED_LOCK:
        count = _PROTECTED_DIGESTS.get(digest, 0) - 1
        if count > 0:
            _PROTECTED_DIGESTS[digest] = count
        else:
            _PROTECTED_DIGESTS.pop(digest, None)


def protected_digests() -> Set[str]:
    """Snapshot of currently pinned digests."""
    with _PROTECTED_LOCK:
        return set(_PROTECTED_DIGESTS)


def _source_token(spec: str) -> str:
    """Provenance token for file-backed specs (path with no ``kind:``).

    A generator spec is fully determined by its string + seed; a file
    path is not -- the file can change under the same name -- so its
    size and mtime join the digest and a rewritten file reads as a new
    artifact rather than a stale hit.
    """
    if ":" in spec:
        return "src=generator"
    try:
        stat = os.stat(spec)
    except OSError:
        return "src=missing"
    return f"src={stat.st_size}:{stat.st_mtime_ns}"


def spec_digest(spec: Any) -> str:
    """SHA-256 of a :class:`~repro.runner.spec.GraphSpec` recipe.

    Duck-typed (any object with the GraphSpec fields) so this module
    never imports :mod:`repro.runner` -- the runner imports us.
    """
    import repro

    parts = [
        f"schema={STORE_SCHEMA}",
        f"version={repro.__version__}",
        f"spec={spec.spec}",
        f"seed={spec.seed}",
        f"scale={spec.scale!r}",
        f"weighted={spec.weighted}",
        f"symmetrized={spec.symmetrized}",
        f"weight_seed={spec.weight_seed}",
        _source_token(spec.spec),
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


def _load_array(
    path: str, dtype: str, shape: Tuple[int, ...]
) -> np.ndarray:
    """Memory-map one published ``.npy`` file read-only.

    Zero-length arrays cannot be mmapped (POSIX forbids empty maps), so
    they load eagerly -- there are no bytes to share anyway.
    """
    if int(np.prod(shape)) == 0:
        array = np.load(path, allow_pickle=False)
    else:
        array = np.load(path, mmap_mode="r", allow_pickle=False)
    if str(array.dtype) != dtype or tuple(array.shape) != tuple(shape):
        raise GraphFormatError(
            f"{path}: expected {dtype}{shape}, found "
            f"{array.dtype}{array.shape}"
        )
    return array


class GraphStore:
    """A directory of verified, atomically published graph artifacts."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_store_dir()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _dir(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest)

    def _manifest_path(self, digest: str) -> str:
        return os.path.join(self._dir(digest), MANIFEST_NAME)

    def _lock_path(self, digest: str) -> str:
        return os.path.join(self.root, "locks", digest + ".lock")

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _build_lock(self, digest: str) -> Iterator[None]:
        """Cross-process exclusive lock serializing one digest's build.

        Lock files live outside the artifact directories so eviction
        never unlinks a held lock.  On platforms without ``fcntl`` the
        lock degrades to a no-op: concurrent builders may both build,
        but the atomic rename publish still guarantees an untorn
        artifact (the loser's rename fails and its copy is discarded).
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        path = self._lock_path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "a+b") as handle:
            try:
                fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                FAULT_COUNTERS.increment("graph_store.lock_waits")
                trace_event("graph_store.lock_wait", digest=digest)
                fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------

    def load(self, digest: str) -> Optional[CSRGraph]:
        """Map one artifact, or ``None`` on miss or corruption.

        Corrupt artifacts (unparseable manifest, wrong magic/schema,
        missing or size-mismatched arrays) are evicted so the next
        build can republish them.  Structural CSR validation is skipped
        (``validate=False``): the arrays were validated at publish time
        and re-walking them here would fault in every page of a graph
        we specifically want to load lazily.
        """
        manifest = self._read_manifest(digest)
        if manifest is None:
            return None
        directory = self._dir(digest)
        try:
            arrays: Dict[str, Optional[np.ndarray]] = {}
            for name in ARRAY_NAMES:
                meta = manifest["arrays"].get(name)
                if meta is None:
                    arrays[name] = None
                    continue
                arrays[name] = _load_array(
                    os.path.join(directory, name + ".npy"),
                    meta["dtype"],
                    tuple(meta["shape"]),
                )
            if arrays["row_ptr"] is None or arrays["col_idx"] is None:
                raise GraphFormatError("manifest missing required arrays")
            graph = CSRGraph(
                arrays["row_ptr"],
                arrays["col_idx"],
                arrays["weights"],
                validate=False,
            )
        except Exception:
            self._evict(digest, reason="corrupt")
            return None
        try:
            os.utime(self._manifest_path(digest))  # LRU touch for prune()
        except OSError:
            pass
        return graph

    def _read_manifest(self, digest: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._manifest_path(digest), encoding="utf-8") as f:
                manifest = json.load(f)
        except OSError:
            return None  # plain miss: nothing published yet
        except json.JSONDecodeError:
            self._evict(digest, reason="corrupt")
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("magic") != MANIFEST_MAGIC
            or manifest.get("schema") != STORE_SCHEMA
            or not isinstance(manifest.get("arrays"), dict)
        ):
            self._evict(digest, reason="corrupt")
            return None
        return manifest

    def _evict(self, digest: str, reason: str = "evicted") -> None:
        shutil.rmtree(self._dir(digest), ignore_errors=True)
        FAULT_COUNTERS.increment(f"graph_store.{reason}")
        trace_event("graph_store.evict", digest=digest, reason=reason)

    # ------------------------------------------------------------------
    # Publish
    # ------------------------------------------------------------------

    def put(
        self,
        digest: str,
        graph: CSRGraph,
        spec: Optional[Any] = None,
        build_seconds: Optional[float] = None,
    ) -> str:
        """Atomically publish one built graph; returns the artifact dir.

        The artifact is staged under a hidden temp directory in the
        store root and renamed into place, so a concurrent reader sees
        either nothing or the complete artifact.  Losing a publish race
        (the final directory already exists) silently discards the
        duplicate -- content addressing makes both copies identical.
        """
        import repro

        final = self._dir(digest)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        tmp = os.path.join(
            self.root, f".tmp-{digest[:16]}-{os.getpid()}-{time.time_ns()}"
        )
        os.makedirs(tmp)
        try:
            arrays: Dict[str, Optional[Dict[str, Any]]] = {}
            for name in ARRAY_NAMES:
                array = getattr(graph, name)
                if array is None:
                    arrays[name] = None
                    continue
                np.save(os.path.join(tmp, name + ".npy"), np.asarray(array))
                arrays[name] = {
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "nbytes": int(array.nbytes),
                }
            manifest = {
                "magic": MANIFEST_MAGIC,
                "schema": STORE_SCHEMA,
                "digest": digest,
                "arrays": arrays,
                "num_vertices": graph.num_vertices,
                "num_edges": graph.num_edges,
                "provenance": {
                    "version": repro.__version__,
                    "created": time.time(),
                    "build_seconds": build_seconds,
                    "pid": os.getpid(),
                    "spec": _spec_fields(spec),
                },
            }
            # The manifest is written last inside the staging directory,
            # but atomicity comes from the directory rename below.
            with open(
                os.path.join(tmp, MANIFEST_NAME), "w", encoding="utf-8"
            ) as f:
                json.dump(manifest, f, indent=2, sort_keys=True)
            try:
                os.rename(tmp, final)
            except OSError:
                if not os.path.exists(self._manifest_path(digest)):
                    raise  # a real failure, not a lost publish race
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        trace_event(
            "graph_store.publish",
            digest=digest,
            vertices=graph.num_vertices,
            edges=graph.num_edges,
        )
        return final

    # ------------------------------------------------------------------
    # Build-through
    # ------------------------------------------------------------------

    def get_or_build(self, spec: Any, builder) -> CSRGraph:
        """Map the artifact for ``spec``, building and publishing on miss.

        The fast path is lock-free: a published artifact maps directly.
        On miss, builders serialize on a per-digest file lock; whoever
        wins builds once and publishes, and everyone who waited re-reads
        and maps the published artifact -- so N concurrent processes
        over one recipe pay exactly one build.
        """
        digest = spec_digest(spec)
        graph = self.load(digest)
        if graph is not None:
            FAULT_COUNTERS.increment("graph_store.hits")
            trace_event("graph_store.hit", digest=digest)
            return graph
        FAULT_COUNTERS.increment("graph_store.misses")
        with self._build_lock(digest):
            # A concurrent builder may have published while this
            # process waited on the lock.
            graph = self.load(digest)
            if graph is not None:
                FAULT_COUNTERS.increment("graph_store.hits")
                trace_event("graph_store.hit", digest=digest, waited=True)
                return graph
            start = time.perf_counter()
            built = builder()
            build_seconds = time.perf_counter() - start
            FAULT_COUNTERS.increment("graph_store.builds")
            FAULT_COUNTERS.increment(
                "graph_store.build_ms", int(build_seconds * 1000)
            )
            FAULT_COUNTERS.observe(
                "graph_store.build_seconds", build_seconds
            )
            trace_event(
                "graph_store.build",
                digest=digest,
                seconds=round(build_seconds, 6),
            )
            try:
                self.put(
                    digest, built, spec=spec, build_seconds=build_seconds
                )
            except OSError:
                # A full or read-only disk must not fail the run: hand
                # back the in-memory build; the next process retries.
                FAULT_COUNTERS.increment("graph_store.put_errors")
                return built
        max_bytes = _env_max_bytes()
        if max_bytes is not None:
            self.prune(max_bytes, protect=digest)
        graph = self.load(digest)
        if graph is None:  # evicted or corrupted between publish and map
            return built
        return graph

    # ------------------------------------------------------------------
    # Inventory / eviction
    # ------------------------------------------------------------------

    def entries(self) -> Iterator[Tuple[str, int, float, Dict[str, Any]]]:
        """Yield ``(digest, size_bytes, mtime, manifest)`` per artifact.

        ``mtime`` is the manifest's, which :meth:`load` touches -- so it
        orders artifacts by last *use*, not last build.
        """
        if not os.path.isdir(self.root):
            return
        for fan in sorted(os.listdir(self.root)):
            fan_dir = os.path.join(self.root, fan)
            if len(fan) != 2 or not os.path.isdir(fan_dir):
                continue
            for digest in sorted(os.listdir(fan_dir)):
                directory = os.path.join(fan_dir, digest)
                manifest_path = os.path.join(directory, MANIFEST_NAME)
                try:
                    with open(manifest_path, encoding="utf-8") as f:
                        manifest = json.load(f)
                    mtime = os.stat(manifest_path).st_mtime
                except (OSError, json.JSONDecodeError):
                    continue
                size = 0
                try:
                    for name in os.listdir(directory):
                        size += os.stat(os.path.join(directory, name)).st_size
                except OSError:
                    continue
                yield digest, size, mtime, manifest

    def total_bytes(self) -> int:
        return sum(size for _, size, _, _ in self.entries())

    def prune(
        self,
        max_bytes: int,
        protect: Union[None, str, Iterable[str]] = None,
    ) -> int:
        """Drop least-recently-used artifacts until under ``max_bytes``.

        ``protect`` exempts a digest (or collection of digests) so a
        tight budget cannot evict the graph the caller is about to map.
        Digests pinned via :func:`protect_digest` -- base and compacted
        artifacts of live streaming sessions -- are always exempt,
        closing the race between a session's compaction publish and a
        concurrent LRU sweep.  Returns the number of artifacts removed.
        """
        if protect is None:
            protected = set()
        elif isinstance(protect, str):
            protected = {protect}
        else:
            protected = set(protect)
        protected |= protected_digests()
        items = sorted(self.entries(), key=lambda item: item[2])
        total = sum(size for _, size, _, _ in items)
        removed = 0
        for digest, size, _, _ in items:
            if total <= max_bytes:
                break
            if digest in protected:
                continue
            self._evict(digest, reason="evictions")
            total -= size
            removed += 1
        return removed


def _spec_fields(spec: Optional[Any]) -> Optional[Dict[str, Any]]:
    """The recipe fields recorded as provenance (best-effort)."""
    if spec is None:
        return None
    return {
        "spec": spec.spec,
        "seed": spec.seed,
        "scale": spec.scale,
        "weighted": spec.weighted,
        "symmetrized": spec.symmetrized,
        "weight_seed": spec.weight_seed,
    }


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get("REPRO_GRAPH_STORE_MAX_BYTES")
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_GRAPH_STORE_MAX_BYTES must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ConfigError(
            f"REPRO_GRAPH_STORE_MAX_BYTES must be >= 0, got {value}"
        )
    return value
