"""Compressed sparse row graph representation.

This is the on-disk/in-memory layout the accelerator operates on: a
``row_ptr`` array of ``V + 1`` offsets, an ``col_idx`` array of ``E``
destination vertices, and an optional ``weights`` array of ``E`` edge
weights (SSSP and BC use them; BFS/CC/PR ignore them).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError


class CSRGraph:
    """An immutable directed graph in CSR form.

    Arrays are validated once at construction and never mutated; all
    transformations return new graphs.  ``validate=False`` skips the
    O(V + E) structural checks (monotonic ``row_ptr``, in-range
    ``col_idx``) for arrays that were already validated when they were
    first persisted -- the :mod:`~repro.graph.store` artifact path maps
    graphs lazily, and walking every element here would fault in every
    page of a file the caller specifically wants to read on demand.
    ``ascontiguousarray`` is a no-copy view for the store's already
    contiguous ``int64``/``float64`` memmaps, so memmap backing (and
    laziness) survives construction.
    """

    def __init__(
        self,
        row_ptr: np.ndarray,
        col_idx: np.ndarray,
        weights: Optional[np.ndarray] = None,
        validate: bool = True,
    ) -> None:
        row_ptr = np.ascontiguousarray(row_ptr, dtype=np.int64)
        col_idx = np.ascontiguousarray(col_idx, dtype=np.int64)
        if row_ptr.ndim != 1 or col_idx.ndim != 1:
            raise GraphFormatError("row_ptr and col_idx must be 1-D arrays")
        if row_ptr.shape[0] == 0:
            raise GraphFormatError("row_ptr must have at least one entry")
        if validate:
            if row_ptr[0] != 0:
                raise GraphFormatError("row_ptr[0] must be 0")
            if np.any(np.diff(row_ptr) < 0):
                raise GraphFormatError("row_ptr must be non-decreasing")
            if row_ptr[-1] != col_idx.shape[0]:
                raise GraphFormatError(
                    f"row_ptr[-1]={row_ptr[-1]} does not match "
                    f"len(col_idx)={col_idx.shape[0]}"
                )
            num_vertices = row_ptr.shape[0] - 1
            if col_idx.size and (
                col_idx.min() < 0 or col_idx.max() >= num_vertices
            ):
                raise GraphFormatError(
                    "col_idx contains out-of-range vertex ids"
                )
        if weights is not None:
            weights = np.ascontiguousarray(weights, dtype=np.float64)
            if weights.shape != col_idx.shape:
                raise GraphFormatError("weights must match col_idx in length")
        self.row_ptr = row_ptr
        self.col_idx = col_idx
        self.weights = weights
        for array in (self.row_ptr, self.col_idx, self.weights):
            if array is not None and array.flags.writeable:
                array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        src: np.ndarray,
        dst: np.ndarray,
        num_vertices: int,
        weights: Optional[np.ndarray] = None,
        dedup: bool = False,
    ) -> "CSRGraph":
        """Build a CSR graph from parallel source/destination arrays.

        Args:
            src, dst: edge endpoint arrays of equal length.
            num_vertices: the vertex-id space size.
            weights: optional per-edge weights (kept through dedup by
                taking the minimum weight of duplicate edges).
            dedup: drop duplicate (src, dst) pairs.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphFormatError("src and dst must be equal-length 1-D arrays")
        if num_vertices <= 0:
            raise GraphFormatError("num_vertices must be positive")
        if src.size:
            lo = min(src.min(), dst.min())
            hi = max(src.max(), dst.max())
            if lo < 0 or hi >= num_vertices:
                raise GraphFormatError("edge endpoints out of range")
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != src.shape:
                raise GraphFormatError("weights must match edges in length")

        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if weights is not None:
            weights = weights[order]
        if dedup and src.size:
            keep = np.empty(src.shape[0], dtype=bool)
            keep[0] = True
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            if weights is not None:
                # Duplicate edges keep their minimum weight.
                group_ids = np.cumsum(keep) - 1
                mins = np.full(group_ids[-1] + 1, np.inf)
                np.minimum.at(mins, group_ids, weights)
                weights = mins
            src, dst = src[keep], dst[keep]

        counts = np.bincount(src, minlength=num_vertices)
        row_ptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        return cls(row_ptr, dst, weights)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self.row_ptr.shape[0] - 1

    @property
    def num_edges(self) -> int:
        return self.col_idx.shape[0]

    @property
    def has_weights(self) -> bool:
        return self.weights is not None

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.col_idx, minlength=self.num_vertices)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination ids of ``vertex``'s outgoing edges."""
        if not 0 <= vertex < self.num_vertices:
            raise GraphFormatError(f"vertex {vertex} out of range")
        return self.col_idx[self.row_ptr[vertex] : self.row_ptr[vertex + 1]]

    def edge_range(self, vertex: int) -> Tuple[int, int]:
        """(start, end) offsets of ``vertex``'s edges -- Algorithm 1's
        ``row_ptr[v], row_ptr[v+1]-1`` pair, half-open here."""
        return int(self.row_ptr[vertex]), int(self.row_ptr[vertex + 1])

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Yield (src, dst) pairs; intended for small graphs and tests."""
        for v in range(self.num_vertices):
            for u in self.neighbors(v):
                yield v, int(u)

    def edge_sources(self) -> np.ndarray:
        """Expand row_ptr back into a per-edge source array."""
        return np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), self.out_degrees()
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def transpose(self) -> "CSRGraph":
        """Reverse every edge (needed for BC's backward pass and pull PR)."""
        return CSRGraph.from_edges(
            self.col_idx,
            self.edge_sources(),
            self.num_vertices,
            weights=self.weights,
        )

    def symmetrized(self) -> "CSRGraph":
        """Union of the graph and its transpose, without duplicate edges."""
        src = np.concatenate([self.edge_sources(), self.col_idx])
        dst = np.concatenate([self.col_idx, self.edge_sources()])
        weights = None
        if self.weights is not None:
            weights = np.concatenate([self.weights, self.weights])
        return CSRGraph.from_edges(
            src, dst, self.num_vertices, weights=weights, dedup=True
        )

    def relabeled(self, new_id: np.ndarray) -> "CSRGraph":
        """Renumber vertices: vertex ``v`` becomes ``new_id[v]``.

        ``new_id`` must be a permutation of ``range(num_vertices)``.
        """
        new_id = np.asarray(new_id, dtype=np.int64)
        if new_id.shape[0] != self.num_vertices:
            raise GraphFormatError("new_id must cover every vertex")
        check = np.zeros(self.num_vertices, dtype=bool)
        check[new_id] = True
        if not check.all():
            raise GraphFormatError("new_id must be a permutation")
        return CSRGraph.from_edges(
            new_id[self.edge_sources()],
            new_id[self.col_idx],
            self.num_vertices,
            weights=self.weights,
        )

    def footprint_bytes(self, vertex_bytes: int = 16, edge_bytes: int = 8) -> int:
        """Memory footprint under the paper's layout (16 B/vertex, 8 B/edge)."""
        return self.num_vertices * vertex_bytes + self.num_edges * edge_bytes

    def __repr__(self) -> str:
        kind = "weighted" if self.has_weights else "unweighted"
        return (
            f"CSRGraph(V={self.num_vertices}, E={self.num_edges}, {kind})"
        )
