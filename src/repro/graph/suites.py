"""The scaled evaluation suite standing in for Table III.

The paper's inputs span 58 M to 4.2 B edges.  A Python-level simulator
cannot traverse billions of edges per experiment, so the suite scales
every graph (and every *capacity* in the system configuration) by a
common factor -- 1/256 by default.  Because PolyGraph's temporal slice
count depends only on the ratio ``vertex_state / on_chip_memory``, the
scaled suite reproduces Table III's slice counts (3/5/8/13/16) exactly;
see :func:`temporal_slices` and ``tests/graph/test_suites.py``.

=============  ===========  ==========  ========  ======
Graph          paper V      paper E     paper #sl  archetype
=============  ===========  ==========  ========  ======
RoadUSA        23.9 M       58.3 M      3         grid (high diameter)
Twitter        41.65 M      1.46 B      5         power law, exp ~1.9
Friendster     65.6 M       1.8 B       8         power law, exp ~2.3
Host (WDC)     101 M        2 B         13        power law, exp ~2.05
Urand          134.2 M      4.2 B       16        uniform random
=============  ===========  ==========  ========  ======
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.generators import power_law, road_grid, uniform_random
from repro.units import MiB

#: Default linear scale of the suite relative to the paper's graphs.
DEFAULT_SCALE = 1.0 / 256.0

#: Bytes of per-vertex state PolyGraph keeps resident per slice; chosen so
#: Table III's slice counts fall out of `ceil(4 B x V / on-chip)` exactly.
SLICE_PROPERTY_BYTES = 4

#: The paper's PolyGraph on-chip memory (Table III header: 32 MiB).
PAPER_ONCHIP_BYTES = 32 * MiB


@dataclass(frozen=True)
class GraphSpec:
    """One row of (scaled) Table III."""

    name: str
    paper_vertices: int
    paper_edges: int
    paper_slices: int
    archetype: str
    builder: Callable[[int, int], CSRGraph]  # (num_vertices, seed) -> graph

    def scaled_vertices(self, scale: float = DEFAULT_SCALE) -> int:
        return max(64, int(round(self.paper_vertices * scale)))

    def build(self, scale: float = DEFAULT_SCALE, seed: int = 42) -> CSRGraph:
        return self.builder(self.scaled_vertices(scale), seed)


def _road_builder(num_vertices: int, seed: int) -> CSRGraph:
    side = max(8, int(round(math.sqrt(num_vertices))))
    return road_grid(side, side, seed=seed)


def _power_law_builder(avg_degree: float, exponent: float):
    def build(num_vertices: int, seed: int) -> CSRGraph:
        return power_law(num_vertices, avg_degree, exponent=exponent, seed=seed)

    return build


def _urand_builder(num_vertices: int, seed: int) -> CSRGraph:
    # Paper ratio: 4.2 B edges / 134.2 M vertices ~= 31.3.
    return uniform_random(num_vertices, int(31.3 * num_vertices), seed=seed)


_SUITE: Tuple[GraphSpec, ...] = (
    GraphSpec("road", 23_900_000, 58_300_000, 3, "grid", _road_builder),
    GraphSpec(
        "twitter", 41_650_000, 1_460_000_000, 5, "power-law",
        _power_law_builder(avg_degree=35.0, exponent=1.9),
    ),
    GraphSpec(
        "friendster", 65_600_000, 1_800_000_000, 8, "power-law",
        _power_law_builder(avg_degree=27.4, exponent=2.3),
    ),
    GraphSpec(
        "host", 101_000_000, 2_000_000_000, 13, "power-law",
        _power_law_builder(avg_degree=19.8, exponent=2.05),
    ),
    GraphSpec("urand", 134_200_000, 4_200_000_000, 16, "uniform", _urand_builder),
)

_CACHE: Dict[Tuple[str, float, int], CSRGraph] = {}


def paper_suite() -> Tuple[GraphSpec, ...]:
    """The five Table III graphs, in paper order."""
    return _SUITE


def get_spec(name: str) -> GraphSpec:
    for spec in _SUITE:
        if spec.name == name:
            return spec
    raise ConfigError(
        f"unknown graph {name!r}; known: {[s.name for s in _SUITE]}"
    )


def build_graph(
    name: str, scale: float = DEFAULT_SCALE, seed: int = 42, cache: bool = True
) -> CSRGraph:
    """Build (and memoize) one suite graph at the given scale."""
    if scale <= 0 or scale > 1:
        raise ConfigError("scale must be in (0, 1]")
    key = (name, scale, seed)
    if cache and key in _CACHE:
        return _CACHE[key]
    graph = get_spec(name).build(scale, seed)
    if cache:
        _CACHE[key] = graph
    return graph


def clear_cache() -> None:
    _CACHE.clear()


def temporal_slices(
    num_vertices: int,
    onchip_bytes: int,
    property_bytes: int = SLICE_PROPERTY_BYTES,
) -> int:
    """PolyGraph slice count: ceil(property-state / on-chip memory)."""
    if onchip_bytes <= 0:
        raise ConfigError("onchip_bytes must be positive")
    return max(1, math.ceil(num_vertices * property_bytes / onchip_bytes))


def scaled_onchip_bytes(scale: float = DEFAULT_SCALE) -> int:
    """PolyGraph's 32 MiB on-chip memory, scaled with the suite."""
    return max(1, int(PAPER_ONCHIP_BYTES * scale))
