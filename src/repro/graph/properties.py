"""Graph statistics used by benches and DESIGN/EXPERIMENTS reporting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class GraphSummary:
    """Headline statistics of a graph."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    max_out_degree: int
    degree_p99: float
    approx_diameter: int
    reachable_fraction: float
    footprint_bytes: int

    def row(self) -> str:
        return (
            f"V={self.num_vertices:>10,}  E={self.num_edges:>12,}  "
            f"deg(avg/max)={self.avg_degree:6.1f}/{self.max_out_degree:<8,}  "
            f"diam~{self.approx_diameter:<5}  "
            f"reach={self.reachable_fraction:5.1%}"
        )


def bfs_levels(graph: CSRGraph, source: int) -> np.ndarray:
    """Hop distance from ``source``; -1 for unreachable vertices."""
    if not 0 <= source < graph.num_vertices:
        raise GraphFormatError(f"source {source} out of range")
    level = np.full(graph.num_vertices, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        chunks = [
            graph.col_idx[graph.row_ptr[v] : graph.row_ptr[v + 1]] for v in frontier
        ]
        if not chunks:
            break
        neighbors = np.unique(np.concatenate(chunks))
        fresh = neighbors[level[neighbors] < 0]
        level[fresh] = depth
        frontier = fresh
    return level


def approximate_diameter(graph: CSRGraph, samples: int = 4, seed: int = 3) -> int:
    """Lower-bound diameter estimate: max eccentricity over BFS samples."""
    if graph.num_vertices == 0:
        return 0
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, graph.num_vertices, size=max(1, samples))
    best = 0
    for source in sources:
        levels = bfs_levels(graph, int(source))
        reached = levels[levels >= 0]
        if reached.size:
            best = max(best, int(reached.max()))
    return best


def frontier_profile(graph: CSRGraph, source: int) -> np.ndarray:
    """Vertices discovered per BFS level (the workload's frontier shape)."""
    levels = bfs_levels(graph, source)
    reached = levels[levels >= 0]
    if reached.size == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(reached)


def summarize(graph: CSRGraph, diameter_samples: int = 2) -> GraphSummary:
    """Compute a :class:`GraphSummary` (BFS-based fields use sampling)."""
    degrees = graph.out_degrees()
    levels = bfs_levels(graph, 0) if graph.num_vertices else np.zeros(0)
    reachable = float(np.count_nonzero(levels >= 0)) / max(1, graph.num_vertices)
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        degree_p99=float(np.percentile(degrees, 99)) if degrees.size else 0.0,
        approx_diameter=approximate_diameter(graph, samples=diameter_samples),
        reachable_fraction=reachable,
        footprint_bytes=graph.footprint_bytes(),
    )
