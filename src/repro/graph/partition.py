"""Spatial vertex placement across PEs (Section IV-B).

NOVA assigns every vertex (and its out-edges) to exactly one PE, so no
two PEs ever update the same vertex and no atomics are needed.  The paper
studies three placements (Fig 9b):

- **random / interleaved** -- no preprocessing; vertices striped across
  PEs by id (or by a random permutation).
- **load-balanced** -- vertices sorted by out-degree and dealt round-robin
  so every PE receives a similar number of edges.
- **locality-optimized** -- a RABBIT-like ordering that places connected
  vertices on the same PE (here: BFS discovery order, cut into
  edge-balanced contiguous chunks), trading load balance for fewer
  cross-PE messages.

A placement is a :class:`VertexPlacement`: the owner PE of every vertex
plus each vertex's *local index* within its PE.  Local indices define the
vertex-memory layout that the tracker module's blocks and superblocks are
built over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.graph.csr import CSRGraph
from repro.graph.reorder import bfs_order


@dataclass(frozen=True)
class VertexPlacement:
    """Assignment of vertices to PEs with per-PE local numbering."""

    owner: np.ndarray  # (V,) PE id of each vertex
    local_id: np.ndarray  # (V,) index of each vertex within its PE
    num_pes: int
    strategy: str

    def __post_init__(self) -> None:
        if self.owner.shape != self.local_id.shape:
            raise PartitionError("owner and local_id must have the same shape")
        if self.num_pes <= 0:
            raise PartitionError("num_pes must be positive")
        if self.owner.size and (
            self.owner.min() < 0 or self.owner.max() >= self.num_pes
        ):
            raise PartitionError("owner contains out-of-range PE ids")

    @property
    def num_vertices(self) -> int:
        return self.owner.shape[0]

    def vertices_per_pe(self) -> np.ndarray:
        return np.bincount(self.owner, minlength=self.num_pes)

    def max_local_vertices(self) -> int:
        """Vertex-memory slots needed per PE (the largest local id + 1)."""
        if self.local_id.size == 0:
            return 0
        return int(self.local_id.max()) + 1

    def pe_vertices(self, pe: int) -> np.ndarray:
        """Global ids of the vertices owned by ``pe``, in local-id order."""
        mask = self.owner == pe
        ids = np.flatnonzero(mask)
        return ids[np.argsort(self.local_id[ids], kind="stable")]


def _placement_from_order(
    order: np.ndarray, num_pes: int, strategy: str, contiguous: bool
) -> VertexPlacement:
    """Assign vertices listed in ``order`` to PEs.

    ``contiguous`` splits the order into ``num_pes`` consecutive chunks
    (locality); otherwise vertices are dealt round-robin (balance).
    """
    num_vertices = order.shape[0]
    owner = np.empty(num_vertices, dtype=np.int64)
    local_id = np.empty(num_vertices, dtype=np.int64)
    positions = np.arange(num_vertices, dtype=np.int64)
    if contiguous:
        chunk = -(-num_vertices // num_pes)
        owner[order] = np.minimum(positions // chunk, num_pes - 1)
        local_id[order] = positions - (positions // chunk) * chunk
        # Vertices spilled into the final PE by the min() keep growing ids.
        overflow = positions // chunk >= num_pes
        if overflow.any():
            base = chunk
            local_id[order[overflow]] = base + np.arange(overflow.sum())
    else:
        owner[order] = positions % num_pes
        local_id[order] = positions // num_pes
    return VertexPlacement(owner, local_id, num_pes, strategy)


def interleave_placement(num_vertices: int, num_pes: int) -> VertexPlacement:
    """Stripe vertices across PEs by id (the publisher-order mapping)."""
    if num_pes <= 0 or num_vertices < 0:
        raise PartitionError("invalid sizes")
    order = np.arange(num_vertices, dtype=np.int64)
    return _placement_from_order(order, num_pes, "interleave", contiguous=False)


def random_placement(num_vertices: int, num_pes: int, seed: int = 1) -> VertexPlacement:
    """Random permutation, then striped: no preprocessing insight at all."""
    if num_pes <= 0 or num_vertices < 0:
        raise PartitionError("invalid sizes")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_vertices).astype(np.int64)
    return _placement_from_order(order, num_pes, "random", contiguous=False)


def load_balanced_placement(graph: CSRGraph, num_pes: int) -> VertexPlacement:
    """Sort by out-degree descending, deal round-robin (Section IV-B)."""
    if num_pes <= 0:
        raise PartitionError("num_pes must be positive")
    degrees = graph.out_degrees()
    order = np.argsort(-degrees, kind="stable").astype(np.int64)
    return _placement_from_order(order, num_pes, "load_balanced", contiguous=False)


def locality_placement(graph: CSRGraph, num_pes: int, source: int = 0) -> VertexPlacement:
    """RABBIT-like locality mapping: BFS order cut into edge-balanced chunks."""
    if num_pes <= 0:
        raise PartitionError("num_pes must be positive")
    order = bfs_order(graph, source)
    degrees = graph.out_degrees()[order].astype(np.int64)
    total = degrees.sum()
    if total == 0:
        return _placement_from_order(order, num_pes, "locality", contiguous=True)
    # Cut the order where cumulative edges cross each 1/num_pes share.
    cumulative = np.cumsum(degrees)
    targets = (np.arange(1, num_pes) * total) // num_pes
    cuts = np.searchsorted(cumulative, targets, side="left")
    owner_by_position = np.zeros(order.shape[0], dtype=np.int64)
    for pe, cut in enumerate(cuts, start=1):
        owner_by_position[cut:] = pe
    owner = np.empty(order.shape[0], dtype=np.int64)
    owner[order] = owner_by_position
    local_id = np.empty_like(owner)
    positions = np.arange(order.shape[0], dtype=np.int64)
    starts = np.concatenate([[0], cuts])
    local_id[order] = positions - starts[owner_by_position]
    return VertexPlacement(owner, local_id, num_pes, "locality")


def edge_cut_fraction(graph: CSRGraph, placement: VertexPlacement) -> float:
    """Fraction of edges whose endpoints live on different PEs."""
    if graph.num_edges == 0:
        return 0.0
    src_owner = placement.owner[graph.edge_sources()]
    dst_owner = placement.owner[graph.col_idx]
    return float(np.count_nonzero(src_owner != dst_owner)) / graph.num_edges


def load_imbalance(graph: CSRGraph, placement: VertexPlacement) -> float:
    """Max-over-mean edges per PE; 1.0 is perfectly balanced."""
    edges_per_pe = np.bincount(
        placement.owner[graph.edge_sources()], minlength=placement.num_pes
    )
    mean = edges_per_pe.mean()
    if mean == 0:
        return 1.0
    return float(edges_per_pe.max() / mean)
