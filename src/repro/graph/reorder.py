"""Vertex reordering strategies.

The locality placement (Section IV-B) and the preprocessing-cost
discussion (Section II-C1) both revolve around graph reordering.  This
module provides the orders used in the repo:

- :func:`bfs_order` -- discovery order of a breadth-first traversal;
  cheap, and an effective locality proxy (neighbors end up nearby).
- :func:`degree_order` -- out-degree descending; the basis of the
  load-balanced placement.
- :func:`community_order` -- a lightweight RABBIT-style community
  grouping: repeated label propagation over shrinking label sets, then
  vertices sorted by (community, id).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


def bfs_order(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Vertices in BFS discovery order; unreached vertices appended by id.

    Runs level-synchronous BFS with vectorized frontier expansion.
    """
    if not 0 <= source < graph.num_vertices:
        raise GraphFormatError(f"source {source} out of range")
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[source] = True
    order = [np.array([source], dtype=np.int64)]
    frontier = order[0]
    while frontier.size:
        starts = graph.row_ptr[frontier]
        ends = graph.row_ptr[frontier + 1]
        neighbor_chunks = [
            graph.col_idx[s:e] for s, e in zip(starts, ends) if e > s
        ]
        if not neighbor_chunks:
            break
        neighbors = np.unique(np.concatenate(neighbor_chunks))
        fresh = neighbors[~visited[neighbors]]
        visited[fresh] = True
        if fresh.size:
            order.append(fresh)
        frontier = fresh
    ordered = np.concatenate(order) if order else np.empty(0, dtype=np.int64)
    unreached = np.flatnonzero(~visited)
    return np.concatenate([ordered, unreached]).astype(np.int64)


def degree_order(graph: CSRGraph) -> np.ndarray:
    """Vertices by out-degree descending (stable on ties)."""
    return np.argsort(-graph.out_degrees(), kind="stable").astype(np.int64)


def community_order(graph: CSRGraph, rounds: int = 10, seed: int = 1) -> np.ndarray:
    """Group vertices by label-propagation communities.

    Each round every vertex adopts the minimum label among itself and its
    out-neighbors' labels *with a random tie-scrambling pass* so the
    propagation finds local clusters rather than collapsing straight to
    connected components.  The result is vertices sorted by final label:
    vertices sharing a community become contiguous.
    """
    if rounds <= 0:
        raise GraphFormatError("rounds must be positive")
    num_vertices = graph.num_vertices
    rng = np.random.default_rng(seed)
    # Random initial labels break the id-ordering bias of raw min-label.
    labels = rng.permutation(num_vertices).astype(np.int64)
    src = graph.edge_sources()
    dst = graph.col_idx
    for _ in range(rounds):
        new_labels = labels.copy()
        # Pull the minimum neighbor label along each edge, both directions,
        # which mimics one sweep of community agglomeration.
        np.minimum.at(new_labels, src, labels[dst])
        np.minimum.at(new_labels, dst, labels[src])
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
    return np.argsort(labels, kind="stable").astype(np.int64)


def order_to_relabeling(order: np.ndarray) -> np.ndarray:
    """Convert an order (position -> vertex) to a relabeling (vertex -> new id)."""
    new_id = np.empty_like(order)
    new_id[order] = np.arange(order.shape[0], dtype=order.dtype)
    return new_id
