"""Graph serialization: binary (npz), edge-list text, and DIMACS .gr.

The binary format is the working format (fast, exact).  The text formats
exist so externally produced graphs (e.g. the real RoadUSA in DIMACS
challenge-9 format) can be dropped in without code changes.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph

_MAGIC = "repro-csr-v1"


def save_npz(graph: CSRGraph, path: str) -> None:
    """Save a graph in the package's binary format."""
    arrays = {
        "magic": np.array(_MAGIC),
        "row_ptr": graph.row_ptr,
        "col_idx": graph.col_idx,
    }
    if graph.weights is not None:
        arrays["weights"] = graph.weights
    np.savez_compressed(path, **arrays)


def load_npz(path: str) -> CSRGraph:
    """Load a graph saved by :func:`save_npz`.

    Every failure mode of a corrupt or truncated file -- an unreadable
    zip container, missing arrays, wrong dimensionality, a
    non-monotonic ``row_ptr``, out-of-range ``col_idx`` -- surfaces as
    :class:`GraphFormatError` naming the file, instead of a zlib/zipfile
    exception here or an index error deep inside a workload later.
    """
    if not os.path.exists(path):
        raise GraphFormatError(f"no such file: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except Exception as exc:  # BadZipFile, zlib.error, ValueError, ...
        raise GraphFormatError(
            f"{path} is not a readable npz archive: {exc}"
        ) from exc
    with archive as data:
        if "magic" not in data or str(data["magic"]) != _MAGIC:
            raise GraphFormatError(f"{path} is not a {_MAGIC} file")
        try:
            row_ptr = data["row_ptr"]
            col_idx = data["col_idx"]
            weights = data["weights"] if "weights" in data else None
        except KeyError as exc:
            raise GraphFormatError(
                f"{path} is missing the {exc.args[0]} array"
            ) from None
        except Exception as exc:  # truncated member: zlib error mid-read
            raise GraphFormatError(
                f"{path} has a corrupt or truncated array: {exc}"
            ) from exc
        try:
            # CSRGraph re-checks row_ptr monotonicity/length and col_idx
            # bounds; funnel its verdict through the file name.
            return CSRGraph(row_ptr, col_idx, weights)
        except GraphFormatError as exc:
            raise GraphFormatError(f"{path}: {exc}") from None


def save_edge_list(graph: CSRGraph, path: str) -> None:
    """Write ``src dst [weight]`` lines, one per edge."""
    src = graph.edge_sources()
    with open(path, "w", encoding="ascii") as handle:
        if graph.weights is not None:
            for s, d, w in zip(src, graph.col_idx, graph.weights):
                handle.write(f"{s} {d} {w:g}\n")
        else:
            for s, d in zip(src, graph.col_idx):
                handle.write(f"{s} {d}\n")


def load_edge_list(
    path: str, num_vertices: Optional[int] = None, dedup: bool = False
) -> CSRGraph:
    """Read ``src dst [weight]`` lines.  Lines starting with '#' are skipped."""
    src_list, dst_list, weight_list = [], [], []
    saw_weights = False
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(f"{path}:{line_no}: expected 2 or 3 fields")
            src_list.append(int(parts[0]))
            dst_list.append(int(parts[1]))
            if len(parts) == 3:
                saw_weights = True
                weight_list.append(float(parts[2]))
            elif saw_weights:
                raise GraphFormatError(f"{path}:{line_no}: inconsistent weights")
    src = np.asarray(src_list, dtype=np.int64)
    dst = np.asarray(dst_list, dtype=np.int64)
    weights = np.asarray(weight_list) if saw_weights else None
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1))) + 1
        if num_vertices <= 0:
            raise GraphFormatError(f"{path}: no edges and no vertex count given")
    return CSRGraph.from_edges(src, dst, num_vertices, weights=weights, dedup=dedup)


def save_dimacs(graph: CSRGraph, path: str) -> None:
    """Write DIMACS shortest-path (.gr) format: 1-based, integer weights."""
    src = graph.edge_sources()
    weights = graph.weights
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for i, (s, d) in enumerate(zip(src, graph.col_idx)):
            w = int(weights[i]) if weights is not None else 1
            handle.write(f"a {s + 1} {d + 1} {w}\n")


def load_dimacs(path: str) -> CSRGraph:
    """Read DIMACS shortest-path (.gr) format."""
    num_vertices = None
    src_list, dst_list, weight_list = [], [], []
    with open(path, "r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise GraphFormatError(f"{path}:{line_no}: bad problem line")
                num_vertices = int(parts[2])
            elif parts[0] == "a":
                if len(parts) != 4:
                    raise GraphFormatError(f"{path}:{line_no}: bad arc line")
                src_list.append(int(parts[1]) - 1)
                dst_list.append(int(parts[2]) - 1)
                weight_list.append(float(parts[3]))
            else:
                raise GraphFormatError(f"{path}:{line_no}: unknown record {parts[0]}")
    if num_vertices is None:
        raise GraphFormatError(f"{path}: missing problem line")
    return CSRGraph.from_edges(
        np.asarray(src_list, dtype=np.int64),
        np.asarray(dst_list, dtype=np.int64),
        num_vertices,
        weights=np.asarray(weight_list),
    )
