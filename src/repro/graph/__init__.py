"""Graph substrate: representation, generation, I/O, and partitioning.

The accelerator consumes graphs in compressed sparse row (CSR) form --
exactly the `row_ptr` / `edge_dests` / `edge_wgt` arrays of Algorithm 1 in
the paper.  This package also provides the synthetic generators standing
in for the paper's inputs (Table III), the three spatial vertex-mapping
strategies of Section IV-B, and graph statistics used by the benches.
"""

from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    uniform_random,
    rmat,
    road_grid,
    power_law,
    with_uniform_weights,
)
from repro.graph.partition import (
    VertexPlacement,
    interleave_placement,
    random_placement,
    load_balanced_placement,
    locality_placement,
    edge_cut_fraction,
    load_imbalance,
)
from repro.graph.reorder import degree_order, bfs_order, community_order
from repro.graph.properties import GraphSummary, summarize
from repro.graph.store import GraphStore, default_store_dir, spec_digest, store_enabled
from repro.graph.suites import GraphSpec, paper_suite, build_graph
from repro.graph import io

__all__ = [
    "CSRGraph",
    "uniform_random",
    "rmat",
    "road_grid",
    "power_law",
    "with_uniform_weights",
    "VertexPlacement",
    "interleave_placement",
    "random_placement",
    "load_balanced_placement",
    "locality_placement",
    "edge_cut_fraction",
    "load_imbalance",
    "degree_order",
    "bfs_order",
    "community_order",
    "GraphStore",
    "GraphSummary",
    "default_store_dir",
    "spec_digest",
    "store_enabled",
    "summarize",
    "GraphSpec",
    "paper_suite",
    "build_graph",
    "io",
]
