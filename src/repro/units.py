"""Unit helpers shared across memory, network, and configuration models.

All sizes inside the simulator are plain integers in bytes and all rates
are floats in bytes per second; these helpers exist so configuration code
reads like the paper ("4 GiB", "256 GB/s") instead of raw exponents.

Decimal units (KB, MB, GB, TB) follow SI (powers of 1000) and are used for
bandwidths, matching how memory vendors and the paper quote them
(e.g. HBM2 at 256 GB/s).  Binary units (KiB, MiB, GiB, TiB) are powers of
1024 and are used for capacities (e.g. a 64 KiB cache).
"""

from __future__ import annotations

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40


def bytes_to_human(num_bytes: float) -> str:
    """Render a byte count with the largest binary unit that keeps it >= 1.

    >>> bytes_to_human(1536)
    '1.50 KiB'
    >>> bytes_to_human(512)
    '512 B'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for unit, name in ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if num_bytes >= unit:
            return f"{num_bytes / unit:.2f} {name}"
    return f"{num_bytes:.0f} B"


def rate_to_human(bytes_per_second: float) -> str:
    """Render a bandwidth with the largest decimal unit that keeps it >= 1.

    >>> rate_to_human(256e9)
    '256.00 GB/s'
    """
    if bytes_per_second < 0:
        raise ValueError(f"rate must be non-negative, got {bytes_per_second}")
    for unit, name in ((TB, "TB/s"), (GB, "GB/s"), (MB, "MB/s"), (KB, "KB/s")):
        if bytes_per_second >= unit:
            return f"{bytes_per_second / unit:.2f} {name}"
    return f"{bytes_per_second:.0f} B/s"


def seconds_to_human(seconds: float) -> str:
    """Render a duration with an appropriate SI prefix.

    >>> seconds_to_human(0.0025)
    '2.500 ms'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    for scale, name in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"), (1e-9, "ns")):
        if seconds >= scale:
            return f"{seconds / scale:.3f} {name}"
    return f"{seconds:.3g} s"
