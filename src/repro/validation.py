"""Cross-system validation harness.

Runs the same workload on NOVA, PolyGraph, the Ligra model, and the
timing-free functional driver, then checks that all four agree with the
sequential oracle.  This is the repository's end-to-end health check --
one call exercises every engine's functional path on real inputs.

Also exposed as ``python -m repro validate``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.ligra import LigraConfig, LigraModel
from repro.baselines.polygraph import PolyGraphConfig, PolyGraphSystem
from repro.core.system import NovaSystem, verify_result
from repro.graph.csr import CSRGraph
from repro.sim.config import scaled_config
from repro.units import MiB
from repro.workloads import get_workload
from repro.workloads.driver import run_functional


@dataclass
class ValidationReport:
    """Outcome of one cross-system validation."""

    workload: str
    num_vertices: int
    num_edges: int
    systems: List[str] = field(default_factory=list)
    passed: bool = True
    failures: Dict[str, str] = field(default_factory=dict)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        detail = (
            "" if self.passed
            else " (" + "; ".join(f"{k}: {v}" for k, v in self.failures.items()) + ")"
        )
        return (
            f"{status} {self.workload} on V={self.num_vertices:,} "
            f"E={self.num_edges:,} across {', '.join(self.systems)}{detail}"
        )


def validate_workload(
    workload: str,
    graph: CSRGraph,
    source: Optional[int] = None,
    scale: float = 1.0 / 256.0,
    **workload_kwargs,
) -> ValidationReport:
    """Run one workload on every engine and compare with the oracle."""
    program = get_workload(workload, **workload_kwargs)
    if source is None and workload not in ("cc", "pr", "pr-delta"):
        source = int(np.argmax(graph.out_degrees()))
    expected, _ = program.reference(graph, source)

    onchip = max(1024, int(32 * MiB * scale))
    candidates = {
        "functional": lambda: run_functional(
            get_workload(workload, **workload_kwargs), graph, source
        ).result,
        "nova": lambda: NovaSystem(
            scaled_config(num_gpns=1, scale=scale), graph, placement="random"
        ).run(workload, source=source, **workload_kwargs).result,
        "polygraph": lambda: PolyGraphSystem(
            PolyGraphConfig(onchip_bytes=onchip), graph
        ).run(workload, source=source, **workload_kwargs).result,
        "ligra": lambda: LigraModel(LigraConfig(), graph).run(
            workload, source=source, **workload_kwargs
        ).result,
    }

    report = ValidationReport(
        workload=workload,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
    )
    # pr-delta converges within its threshold, not exactly; compare with
    # a tolerance matched to the residual bound.
    atol = 1e-6
    if workload == "pr-delta":
        threshold = workload_kwargs.get("threshold", 1e-7)
        atol = threshold * graph.num_vertices

    for name, runner in candidates.items():
        report.systems.append(name)
        try:
            actual = runner()
            verify_result(program.name, actual, expected, atol=atol)
        except AssertionError as failure:
            report.passed = False
            report.failures[name] = str(failure)
    return report


def validate_all(
    graph: CSRGraph,
    weighted_graph: Optional[CSRGraph] = None,
    scale: float = 1.0 / 256.0,
) -> List[ValidationReport]:
    """Validate every workload on appropriate graph variants."""
    from repro.graph.generators import with_uniform_weights

    if weighted_graph is None:
        weighted_graph = with_uniform_weights(graph, seed=7)
    symmetric = graph.symmetrized()
    reports = [
        validate_workload("bfs", graph, scale=scale),
        validate_workload("sssp", weighted_graph, scale=scale),
        validate_workload("cc", symmetric, scale=scale),
        validate_workload("pr", graph, scale=scale, max_supersteps=40),
        validate_workload("bc", graph, scale=scale),
        validate_workload("pr-delta", graph, scale=scale, threshold=1e-8),
    ]
    return reports
