"""Execute independent simulations across a process pool, cache-first.

:class:`SweepRunner` takes a list of :class:`~repro.runner.spec.RunSpec`
and returns their :class:`~repro.core.metrics.RunResult` in order:

1. every spec's cache key is computed (a digest of config + graph
   arrays + workload + source + code version, see
   :mod:`repro.runner.cache`);
2. cached results are loaded and counted as *hits*;
3. the remaining unique keys are computed -- inline when one worker
   suffices, otherwise fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` -- and stored.

Workers are forked, so in-memory graphs are inherited copy-on-write and
:class:`~repro.runner.spec.GraphSpec` recipes hit each worker's own
build memo.  Simulations are deterministic, so a cache hit is
bit-identical to recomputing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import RunResult
from repro.errors import ConfigError
from repro.obs.tracing import trace_span
from repro.runner.cache import RunCache, spec_key
from repro.runner.spec import RunSpec


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one simulation to completion (the worker entry point)."""
    graph = spec.resolve_graph()
    if spec.system == "nova":
        from repro.core.system import NovaSystem
        from repro.obs.config import make_recorder
        from repro.sim.config import scaled_config

        config = spec.config if spec.config is not None else scaled_config()
        system = NovaSystem(
            config, graph, placement=spec.placement, seed=spec.placement_seed
        )
        return system.run(
            spec.workload,
            source=spec.source,
            max_quanta=spec.max_quanta,
            recorder=make_recorder(spec.obs),
            **spec.workload_kwargs,
        )
    if spec.obs is not None and spec.obs.active:
        raise ConfigError(
            "observability instrumentation is only supported for the "
            f"nova system, not {spec.system!r}"
        )
    if spec.system == "polygraph":
        from repro.baselines.polygraph import PolyGraphConfig, PolyGraphSystem

        config = spec.config if spec.config is not None else PolyGraphConfig()
        return PolyGraphSystem(config, graph).run(
            spec.workload, source=spec.source, **spec.workload_kwargs
        )
    if spec.system == "ligra":
        from repro.baselines.ligra import LigraConfig, LigraModel

        config = spec.config if spec.config is not None else LigraConfig()
        return LigraModel(config, graph).run(
            spec.workload, source=spec.source, **spec.workload_kwargs
        )
    raise ConfigError(
        f"unknown system {spec.system!r}; expected nova, polygraph, or ligra"
    )


def _default_workers() -> int:
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


@dataclass
class SweepStats:
    """Accounting for one :meth:`SweepRunner.run` invocation."""

    total: int = 0
    hits: int = 0
    computed: int = 0

    def __str__(self) -> str:
        return (
            f"{self.total} runs: {self.hits} cached, {self.computed} computed"
        )


class SweepRunner:
    """Run independent simulations with caching and process parallelism.

    Args:
        workers: worker-process count; ``None`` reads ``REPRO_WORKERS``
            and falls back to ``os.cpu_count()``.  ``1`` runs inline.
        cache_dir: cache root; ``None`` uses
            :func:`~repro.runner.cache.default_cache_dir`.
        use_cache: set ``False`` to always recompute (and not store).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
    ) -> None:
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        self.cache = RunCache(cache_dir) if use_cache else None

    def run_one(self, spec: RunSpec) -> RunResult:
        results, _ = self.run([spec])
        return results[0]

    def run(
        self, specs: Sequence[RunSpec]
    ) -> Tuple[List[RunResult], SweepStats]:
        """Execute ``specs``; returns results in input order plus stats.

        Identical specs (same cache key) are computed once even with
        caching disabled.
        """
        stats = SweepStats(total=len(specs))
        with trace_span("sweep.run", runs=len(specs), workers=self.workers):
            keys = [spec_key(spec) for spec in specs]
            resolved: Dict[str, RunResult] = {}
            if self.cache is not None:
                for key in dict.fromkeys(keys):
                    cached = self.cache.load(key)
                    if cached is not None:
                        resolved[key] = cached
            stats.hits = sum(1 for key in keys if key in resolved)

            todo: Dict[str, RunSpec] = {}
            for key, spec in zip(keys, specs):
                if key not in resolved and key not in todo:
                    todo[key] = spec
            stats.computed = len(todo)
            if todo:
                resolved.update(self._execute(todo))
                if self.cache is not None:
                    for key in todo:
                        self.cache.store(key, resolved[key])
                    max_bytes = os.environ.get("REPRO_CACHE_MAX_BYTES")
                    if max_bytes:
                        self.cache.prune(int(max_bytes))
            return [resolved[key] for key in keys], stats

    def _execute(self, todo: Dict[str, RunSpec]) -> Dict[str, RunResult]:
        items = list(todo.items())
        if self.workers == 1 or len(items) == 1:
            return {key: execute_spec(spec) for key, spec in items}
        # Fork keeps parent-built graphs shared copy-on-write and is the
        # only start method that needs no spawn-safe __main__ guard in
        # callers (pytest, notebooks).
        import multiprocessing

        context = multiprocessing.get_context("fork")
        pool_size = min(self.workers, len(items))
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            results = pool.map(
                execute_spec, [spec for _, spec in items]
            )
            return {key: result for (key, _), result in zip(items, results)}
