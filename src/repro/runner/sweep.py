"""Execute independent simulations across a process pool, cache-first.

:class:`SweepRunner` takes a list of :class:`~repro.runner.spec.RunSpec`
and returns their :class:`~repro.core.metrics.RunResult` in order:

1. every spec's cache key is computed (a digest of config + graph
   arrays + workload + source + code version, see
   :mod:`repro.runner.cache`);
2. cached results are loaded and counted as *hits*;
3. the remaining unique keys are computed -- inline when one worker
   suffices, otherwise fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` -- and each result
   is flushed to the cache *the moment it finishes* (futures-based
   submission, not a batch map), so an interrupted sweep resumes with
   zero recomputation.

Execution is fault-isolated: one spec that raises, times out, or kills
its forked worker does not abort its siblings.  Failed keys yield
structured :class:`~repro.runner.fault.RunFailure` records; transient
failures (worker deaths, OOM, cache I/O, timeouts) are retried with
exponential backoff per the runner's
:class:`~repro.runner.fault.RetryPolicy`.  Suspected worker-killing
specs are re-run in single-task isolation pools so a poisoned spec
cannot take sibling retries down with it.  ``on_failure="raise"``
(default) raises :class:`~repro.errors.SweepFailure` *after* every
sibling has completed and stored; ``on_failure="return"`` places the
``RunFailure`` records in the results list instead.

Workers never rebuild graphs: computing the cache keys resolves every
:class:`~repro.runner.spec.GraphSpec` recipe in the parent through the
content-addressed :class:`~repro.graph.store.GraphStore`, which builds
each distinct graph at most once per host and maps it back as read-only
``np.memmap`` arrays.  Forked workers inherit those mappings, and the
kernel page cache shares the underlying bytes across every worker (and
every other process) using the same artifact -- in-memory graphs are
still inherited copy-on-write.  Simulations are deterministic, so a
cache hit is bit-identical to recomputing.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.metrics import RunResult
from repro.errors import ConfigError, RunTimeoutError, SweepFailure
from repro.obs.counters import FAULT_COUNTERS
from repro.obs.tracing import trace_event, trace_span
from repro.runner.cache import RunCache, spec_key
from repro.runner.checkpoint import SweepCheckpoint
from repro.runner.fault import RetryPolicy, RunFailure, env_int, is_transient
from repro.runner.monitor import SweepMonitor
from repro.runner.spec import RunSpec

# ----------------------------------------------------------------------
# System executors
# ----------------------------------------------------------------------

#: system name -> executor(spec) -> RunResult.  Forked workers inherit
#: registrations made in the parent before the pool spawns, so tests and
#: extensions can plug in executors without touching this module.
_SYSTEM_EXECUTORS: Dict[str, Callable[[RunSpec], RunResult]] = {}


def register_system(name: str, executor: Callable[[RunSpec], RunResult]) -> None:
    """Register (or replace) the executor behind a ``RunSpec.system``."""
    _SYSTEM_EXECUTORS[name] = executor


def _nova_system(spec: RunSpec, engine: str = "vectorized"):
    """Build the configured :class:`NovaSystem` for one spec."""
    from repro.core.system import NovaSystem
    from repro.sim.config import scaled_config

    graph = spec.resolve_graph()
    config = spec.config if spec.config is not None else scaled_config()
    return NovaSystem(
        config,
        graph,
        placement=spec.placement,
        seed=spec.placement_seed,
        engine=engine,
    )


def _nova_run(system, spec: RunSpec) -> RunResult:
    """Execute one spec on a prebuilt (possibly reused) system.

    ``NovaSystem.run`` constructs a fresh engine per call, so reusing
    one system across a batch of cells sharing (graph, config,
    placement) is bit-identical to building a system per cell -- only
    the placement construction is amortized.
    """
    from repro.obs.config import make_recorder

    return system.run(
        spec.workload,
        source=spec.source,
        max_quanta=spec.max_quanta,
        recorder=make_recorder(spec.obs),
        **spec.workload_kwargs,
    )


def _run_nova(spec: RunSpec) -> RunResult:
    return _nova_run(_nova_system(spec), spec)


def _run_nova_jit(spec: RunSpec) -> RunResult:
    """The ``nova-jit`` system: numba-compiled kernels when available.

    Falls back transparently to the vectorized engine when numba is
    not importable (see :mod:`repro.core.engine_numba`), so specs keyed
    ``system="nova-jit"`` are runnable on every host -- the cache key
    still separates them from plain ``nova`` entries.
    """
    return _nova_run(_nova_system(spec, engine="jit"), spec)


def _run_polygraph(spec: RunSpec) -> RunResult:
    from repro.baselines.polygraph import PolyGraphConfig, PolyGraphSystem

    config = spec.config if spec.config is not None else PolyGraphConfig()
    return PolyGraphSystem(config, spec.resolve_graph()).run(
        spec.workload, source=spec.source, **spec.workload_kwargs
    )


def _run_ligra(spec: RunSpec) -> RunResult:
    from repro.baselines.ligra import LigraConfig, LigraModel

    config = spec.config if spec.config is not None else LigraConfig()
    return LigraModel(config, spec.resolve_graph()).run(
        spec.workload, source=spec.source, **spec.workload_kwargs
    )


register_system("nova", _run_nova)
register_system("nova-jit", _run_nova_jit)
register_system("polygraph", _run_polygraph)
register_system("ligra", _run_ligra)

#: Systems whose engines thread a MetricsRecorder (timeline/profiling).
_OBS_SYSTEMS = ("nova", "nova-jit")


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one simulation to completion (the worker entry point)."""
    if (
        spec.system not in _OBS_SYSTEMS
        and spec.obs is not None
        and spec.obs.active
    ):
        raise ConfigError(
            "observability instrumentation is only supported for the "
            f"nova system, not {spec.system!r}"
        )
    executor = _SYSTEM_EXECUTORS.get(spec.system)
    if executor is None:
        raise ConfigError(
            f"unknown system {spec.system!r}; expected one of "
            f"{', '.join(sorted(_SYSTEM_EXECUTORS))}"
        )
    return executor(spec)


# ----------------------------------------------------------------------
# Worker attempt wrapper
# ----------------------------------------------------------------------


@dataclass
class _Outcome:
    """Transportable result of one attempt (always picklable)."""

    ok: bool
    result: Optional[RunResult] = None
    error_type: str = ""
    message: str = ""
    transient: bool = False
    timed_out: bool = False
    worker_died: bool = False
    elapsed_seconds: float = 0.0
    #: True when the producing worker already flushed the result to the
    #: run cache (batched execution stores worker-side for crash
    #: durability); the parent then skips the redundant store.
    stored: bool = False


def _execute_with_timeout(
    spec: RunSpec,
    timeout: Optional[float],
    run: Callable[[RunSpec], RunResult] = None,
) -> RunResult:
    """Run a spec under a SIGALRM watchdog (main-thread only).

    Pool workers always run tasks in their process's main thread, so
    the alarm is available there; an inline runner invoked off the main
    thread silently skips enforcement rather than crashing.

    A non-positive timeout raises :class:`ConfigError` -- ``0`` used to
    silently disable enforcement, which read as "timeout immediately".
    A pre-existing ``ITIMER_REAL`` (a caller's own watchdog) is re-armed
    on exit with whatever time it had left rather than being clobbered
    to zero.
    """
    if run is None:
        run = execute_spec
    if timeout is not None and timeout <= 0:
        raise ConfigError(
            f"timeout must be positive (or None to disable), got {timeout:g}"
        )
    if (
        timeout is None
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        return run(spec)

    def _on_alarm(signum, frame):
        raise RunTimeoutError(f"run exceeded {timeout:g}s timeout")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    prior_timer = signal.setitimer(signal.ITIMER_REAL, timeout)
    started = time.monotonic()
    try:
        return run(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if prior_timer[0] > 0.0:
            # Re-arm the interrupted watchdog with its remaining time
            # (floored so an already-expired timer still fires promptly
            # instead of being disarmed by a 0.0 value).
            remaining = max(prior_timer[0] - (time.monotonic() - started), 1e-6)
            signal.setitimer(signal.ITIMER_REAL, remaining, prior_timer[1])


def _attempt(
    spec: RunSpec,
    timeout: Optional[float],
    run: Callable[[RunSpec], RunResult] = None,
) -> _Outcome:
    """Run one spec, converting exceptions into a structured outcome.

    Exceptions are flattened to (type name, message) in the worker so
    unpicklable exception payloads can never poison the result queue.
    """
    start = time.perf_counter()
    try:
        result = _execute_with_timeout(spec, timeout, run=run)
    except Exception as exc:
        return _Outcome(
            ok=False,
            error_type=type(exc).__name__,
            message=str(exc),
            transient=is_transient(exc),
            timed_out=isinstance(exc, RunTimeoutError),
            elapsed_seconds=time.perf_counter() - start,
        )
    return _Outcome(
        ok=True, result=result, elapsed_seconds=time.perf_counter() - start
    )


_WORKER_DIED = _Outcome(
    ok=False,
    error_type="BrokenProcessPool",
    message="worker process died before returning a result",
    transient=True,
    worker_died=True,
)


def _traced_attempt(
    spec: RunSpec, timeout: Optional[float], trace_dir: str, token: str
) -> _Outcome:
    """:func:`_attempt` plus start/done breadcrumbs for victim forensics.

    When a shared pool collapses, *every* in-flight future raises
    ``BrokenProcessPool`` -- the parent cannot tell from the futures
    alone which task's process actually died.  Each task therefore
    drops a ``<token>.start`` marker (holding its worker pid) the
    moment it begins and a ``<token>.done`` marker when it returns;
    after the collapse the parent joins the markers against worker
    exit codes to charge only the true victim (see
    :meth:`SweepRunner._classify_collapse`).  Marker I/O failures are
    swallowed: forensics degrade to the conservative pre-fix behavior,
    they never fail a run.
    """
    try:
        with open(
            os.path.join(trace_dir, token + ".start"), "w", encoding="utf-8"
        ) as f:
            f.write(str(os.getpid()))
    except OSError:
        pass
    outcome = _attempt(spec, timeout)
    try:
        with open(
            os.path.join(trace_dir, token + ".done"), "w", encoding="utf-8"
        ) as f:
            f.write("")
    except OSError:
        pass
    return outcome


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def _default_workers() -> int:
    env = env_int("REPRO_WORKERS", minimum=1)
    if env is not None:
        return env
    return os.cpu_count() or 1


#: Free re-pool passes an innocent collapse sibling gets before it is
#: charged as a suspect anyway -- bounds the rounds a pool that keeps
#: collapsing before any task starts can spin without consuming budget.
_MAX_FREE_REQUEUES = 3


@dataclass
class SweepStats:
    """Accounting for one :meth:`SweepRunner.run` invocation.

    ``hits`` / ``computed`` / ``failed`` partition the sweep's *unique*
    cache keys; ``deduped`` counts the duplicate spec slots resolved by
    aliasing a sibling's key, so ``total == hits + computed + failed +
    deduped`` always holds.  ``retried`` counts re-executions granted to
    transient failures (not slots).  ``fault_counters`` holds this
    sweep's *own* ``sweep.*`` counter increments -- a delta against the
    process-wide :data:`~repro.obs.counters.FAULT_COUNTERS` registry, so
    consecutive sweeps in one process never bleed counts into each
    other.
    """

    total: int = 0
    hits: int = 0
    computed: int = 0
    failed: int = 0
    retried: int = 0
    deduped: int = 0
    fault_counters: Dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        text = (
            f"{self.total} runs: {self.hits} cached, {self.computed} computed"
        )
        if self.failed:
            text += f", {self.failed} failed"
        if self.retried:
            text += f", {self.retried} retried"
        if self.deduped:
            text += f", {self.deduped} deduped"
        return text


class SweepRunner:
    """Run independent simulations with caching, process parallelism,
    and per-run fault isolation.

    Args:
        workers: worker-process count; ``None`` reads ``REPRO_WORKERS``
            and falls back to ``os.cpu_count()``.  ``1`` runs inline
            (note: inline runs share the parent process, so a worker
            death cannot be isolated there).
        cache_dir: cache root; ``None`` uses
            :func:`~repro.runner.cache.default_cache_dir`.
        use_cache: set ``False`` to always recompute (and not store).
        policy: per-run timeout/retry policy; ``None`` reads
            ``REPRO_RUN_TIMEOUT`` / ``REPRO_RUN_RETRIES`` /
            ``REPRO_RETRY_BACKOFF`` with defaults (no timeout, one
            retry for transient failures).
        batch: group cells sharing a graph into one worker task each
            (see :mod:`repro.runner.batch`): the worker maps the graph
            once, reuses the system per config, and runs the group's
            cells back-to-back, flushing each result to the cache
            individually.  ``None`` reads ``REPRO_SWEEP_BATCH``
            (default off).  Results are bit-identical to unbatched
            execution; only per-task fixed costs are amortized.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        policy: Optional[RetryPolicy] = None,
        batch: Optional[bool] = None,
    ) -> None:
        self.workers = workers if workers is not None else _default_workers()
        if self.workers < 1:
            raise ConfigError("workers must be at least 1")
        self.cache = RunCache(cache_dir) if use_cache else None
        self.policy = policy if policy is not None else RetryPolicy.from_env()
        if batch is None:
            batch = os.environ.get("REPRO_SWEEP_BATCH", "").strip() not in (
                "", "0", "false", "no",
            )
        self.batch = bool(batch)

    def run_one(self, spec: RunSpec) -> RunResult:
        results, _ = self.run([spec])
        return results[0]

    def run(
        self,
        specs: Sequence[RunSpec],
        on_failure: str = "raise",
        checkpoint: Optional[SweepCheckpoint] = None,
        monitor: Optional[SweepMonitor] = None,
    ) -> Tuple[List[Union[RunResult, RunFailure]], SweepStats]:
        """Execute ``specs``; returns results in input order plus stats.

        Identical specs (same cache key) are computed once even with
        caching disabled.  Completed results flush to the cache (and the
        optional ``checkpoint`` manifest) as they finish, so sibling
        work survives failures and interruptions.  ``on_failure``
        selects what a non-empty failure set does after every sibling
        completed: ``"raise"`` raises :class:`SweepFailure`,
        ``"return"`` leaves :class:`RunFailure` records in the failed
        slots.  ``monitor`` (a
        :class:`~repro.runner.monitor.SweepMonitor`) observes every
        per-key transition for live progress/ETA reporting; resumed
        runs reach it as cache hits, so prior completions count toward
        its progress from the first line.
        """
        if on_failure not in ("raise", "return"):
            raise ConfigError(
                f"on_failure must be 'raise' or 'return', got {on_failure!r}"
            )
        # Validate eviction config before burning any compute.
        max_bytes = env_int("REPRO_CACHE_MAX_BYTES", minimum=0)
        stats = SweepStats(total=len(specs))
        fault_base = FAULT_COUNTERS.snapshot()
        with trace_span("sweep.run", runs=len(specs), workers=self.workers):
            keys = [spec_key(spec) for spec in specs]
            unique: Dict[str, RunSpec] = {}
            for key, spec in zip(keys, specs):
                if key not in unique:
                    unique[key] = spec
            stats.deduped = len(keys) - len(unique)
            if checkpoint is not None:
                checkpoint.begin(total=len(unique))
            if monitor is not None:
                monitor.begin(unique, workers=self.workers)

            resolved: Dict[str, Union[RunResult, RunFailure]] = {}
            if self.cache is not None:
                for key in unique:
                    cached = self.cache.load(key)
                    if cached is not None:
                        resolved[key] = cached
                        if checkpoint is not None:
                            checkpoint.mark(key)
                        if monitor is not None:
                            monitor.hit(key)
            stats.hits = len(resolved)

            todo = {
                key: spec
                for key, spec in unique.items()
                if key not in resolved
            }
            if todo:
                resolved.update(
                    self._execute(todo, stats, checkpoint, monitor)
                )
            stats.failed = sum(
                1 for value in resolved.values() if isinstance(value, RunFailure)
            )
            stats.computed = len(todo) - stats.failed

            if self.cache is not None and max_bytes is not None:
                self.cache.prune(max_bytes)

            stats.fault_counters = FAULT_COUNTERS.delta_since(fault_base)
            if monitor is not None:
                monitor.end()
            trace_event(
                "sweep.summary",
                total=stats.total,
                hits=stats.hits,
                computed=stats.computed,
                failed=stats.failed,
                retried=stats.retried,
                deduped=stats.deduped,
                fault_counters=stats.fault_counters,
            )
            failures = [
                value
                for value in resolved.values()
                if isinstance(value, RunFailure)
            ]
            if failures and on_failure == "raise":
                raise SweepFailure(failures, stats=stats)
            return [resolved[key] for key in keys], stats

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _execute(
        self,
        todo: Dict[str, RunSpec],
        stats: SweepStats,
        checkpoint: Optional[SweepCheckpoint],
        monitor: Optional[SweepMonitor] = None,
    ) -> Dict[str, Union[RunResult, RunFailure]]:
        """Round-based attempt loop: submit, drain, classify, retry."""
        policy = self.policy
        resolved: Dict[str, Union[RunResult, RunFailure]] = {}
        attempts: Dict[str, int] = {key: 0 for key in todo}
        last_outcome: Dict[str, _Outcome] = {}
        requeue_counts: Dict[str, int] = {}
        pending: Dict[str, RunSpec] = dict(todo)
        round_index = 0

        def complete(key: str, outcome: _Outcome) -> None:
            attempts[key] += 1
            last_outcome[key] = outcome
            if outcome.ok:
                resolved[key] = outcome.result
                self._flush(key, outcome.result, checkpoint,
                            stored=outcome.stored)
                FAULT_COUNTERS.observe(
                    "sweep.run_seconds", outcome.elapsed_seconds
                )
                if monitor is not None:
                    monitor.finish(key, ok=True,
                                   elapsed_seconds=outcome.elapsed_seconds)
                return
            if outcome.timed_out:
                FAULT_COUNTERS.increment("sweep.timeouts")
            if outcome.worker_died:
                FAULT_COUNTERS.increment("sweep.worker_deaths")
            if outcome.transient and policy.allows_retry(attempts[key]):
                retries[key] = todo[key]
                stats.retried += 1
                FAULT_COUNTERS.increment("sweep.retries")
                if monitor is not None:
                    monitor.retry(key)
                trace_event(
                    "sweep.retry",
                    key=key,
                    attempt=attempts[key],
                    error=outcome.error_type,
                )
                return
            failure = RunFailure(
                key=key,
                spec=todo[key],
                kind=(
                    "timeout"
                    if outcome.timed_out
                    else "worker-died" if outcome.worker_died else "error"
                ),
                error_type=outcome.error_type,
                message=outcome.message,
                attempts=attempts[key],
                elapsed_seconds=outcome.elapsed_seconds,
            )
            resolved[key] = failure
            FAULT_COUNTERS.increment("sweep.failures")
            if monitor is not None:
                monitor.finish(key, ok=False,
                               elapsed_seconds=outcome.elapsed_seconds)
            trace_event(
                "sweep.run_failed",
                key=key,
                kind=failure.kind,
                error=failure.error_type,
                attempts=failure.attempts,
            )

        while pending:
            if round_index:
                delay = policy.backoff_delay(round_index)
                if delay:
                    time.sleep(delay)
            retries: Dict[str, RunSpec] = {}
            requeues: Dict[str, RunSpec] = {}

            def requeue(key: str) -> None:
                # An innocent sibling of a pool collapse: its process did
                # not die, it only lost its seat when the shared pool
                # broke.  Re-queue it for the next round without touching
                # its attempt count or the retry budget.  The free pass
                # is bounded so a pathological pool that keeps collapsing
                # before any task starts still terminates.
                if requeue_counts.get(key, 0) >= _MAX_FREE_REQUEUES:
                    complete(key, _WORKER_DIED)
                    return
                requeue_counts[key] = requeue_counts.get(key, 0) + 1
                requeues[key] = todo[key]
                FAULT_COUNTERS.increment("sweep.requeues")
                if monitor is not None:
                    monitor.requeue(key)
                trace_event(
                    "sweep.requeue", key=key, free_pass=requeue_counts[key]
                )

            # Keys whose worker died are suspects: re-run each in its own
            # single-task pool so a poisoned spec cannot keep breaking the
            # shared pool and draining sibling retry budgets.
            suspects = {
                key
                for key in pending
                if last_outcome.get(key) is not None
                and last_outcome[key].worker_died
            }
            if monitor is not None:
                for key in pending:
                    monitor.running(key)
            with trace_span(
                "sweep.execute", runs=len(pending), round=round_index
            ):
                self._run_round(pending, suspects, complete, requeue)
            pending = {**retries, **requeues}
            round_index += 1
        return resolved

    def _flush(
        self,
        key: str,
        result: RunResult,
        checkpoint: Optional[SweepCheckpoint],
        stored: bool = False,
    ) -> None:
        """Checkpoint one completed run the moment it finishes."""
        if self.cache is not None:
            if stored:
                # A batch worker already flushed this result to the
                # cache; count the flush, skip the redundant store.
                FAULT_COUNTERS.increment("sweep.checkpoint_flushes")
            else:
                try:
                    self.cache.store(key, result)
                    FAULT_COUNTERS.increment("sweep.checkpoint_flushes")
                except OSError:
                    # A full or flaky disk must not kill a completed run
                    # -- the result is still returned, it just won't be
                    # reused.
                    FAULT_COUNTERS.increment("sweep.cache_errors")
        if checkpoint is not None:
            checkpoint.mark(key)

    def _run_round(
        self,
        batch: Dict[str, RunSpec],
        suspects: set,
        complete: Callable[[str, _Outcome], None],
        requeue: Callable[[str], None],
    ) -> None:
        """Run one round, reporting each key's outcome as it settles."""
        timeout = self.policy.timeout_seconds
        pooled = [
            (key, spec) for key, spec in batch.items() if key not in suspects
        ]
        if pooled:
            if self.batch and len(pooled) > 1:
                self._run_grouped(pooled, timeout, complete, requeue)
            elif self.workers == 1:
                # Explicit single-worker mode runs inline (no isolation
                # from worker death, by construction).
                for key, spec in pooled:
                    complete(key, _attempt(spec, timeout))
            elif len(pooled) == 1:
                # Never run a lone leftover inline when the caller asked
                # for process isolation: a worker-killing spec would
                # take the parent down with it.
                key, spec = pooled[0]
                complete(key, self._run_isolated(spec, timeout))
            else:
                self._run_pooled(pooled, timeout, complete, requeue)
        for key in suspects:
            complete(key, self._run_isolated(batch[key], timeout))

    def _run_grouped(
        self,
        items: List[Tuple[str, RunSpec]],
        timeout: Optional[float],
        complete: Callable[[str, _Outcome], None],
        requeue: Callable[[str], None],
    ) -> None:
        """Batched execution: one worker task per same-graph cell group."""
        import multiprocessing

        from repro.runner.batch import (
            attempt_group,
            group_cells,
            recover_group,
        )

        groups = group_cells(items, self.workers)
        cache_root = self.cache.root if self.cache is not None else None
        trace_event(
            "sweep.batch_groups", cells=len(items), groups=len(groups)
        )
        if self.workers == 1:
            for group in groups:
                for key, outcome in attempt_group(group, timeout, cache_root):
                    complete(key, outcome)
            return
        context = multiprocessing.get_context("fork")
        pool_size = min(self.workers, len(groups))
        with ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            futures = {
                pool.submit(attempt_group, group, timeout, cache_root): index
                for index, group in enumerate(groups)
            }
            for future in as_completed(futures):
                group = groups[futures[future]]
                try:
                    outcomes = future.result()
                except BrokenProcessPool:
                    # The group's worker died mid-batch.  Cells already
                    # flushed to the cache are recovered as completions;
                    # the first unflushed cell (execution is in order)
                    # is the suspect; the rest re-queue for free.
                    for key, action in recover_group(group, self.cache):
                        if action == "requeue":
                            requeue(key)
                        else:
                            complete(key, action)
                    continue
                except Exception as exc:
                    outcomes = [
                        (
                            key,
                            _Outcome(
                                ok=False,
                                error_type=type(exc).__name__,
                                message=str(exc),
                                transient=is_transient(exc),
                            ),
                        )
                        for key, _ in group
                    ]
                for key, outcome in outcomes:
                    complete(key, outcome)

    def _run_pooled(
        self,
        items: List[Tuple[str, RunSpec]],
        timeout: Optional[float],
        complete: Callable[[str, _Outcome], None],
        requeue: Callable[[str], None],
    ) -> None:
        # Fork keeps parent-built graphs shared copy-on-write and is the
        # only start method that needs no spawn-safe __main__ guard in
        # callers (pytest, notebooks).
        import multiprocessing
        import shutil
        import tempfile

        context = multiprocessing.get_context("fork")
        pool_size = min(self.workers, len(items))
        trace_dir = tempfile.mkdtemp(prefix="repro-sweep-trace-")
        broken: List[str] = []
        procs: Dict[int, object] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=pool_size, mp_context=context
            ) as pool:
                futures = {
                    pool.submit(
                        _traced_attempt, spec, timeout, trace_dir, key
                    ): key
                    for key, spec in items
                }
                # Snapshot worker Process objects while the pool is
                # healthy: after a collapse their exit codes identify
                # the process that actually died (stdlib-private but
                # stable; forensics degrade gracefully without it).
                try:
                    procs = dict(getattr(pool, "_processes", None) or {})
                except Exception:
                    procs = {}
                for future in as_completed(futures):
                    key = futures[future]
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken.append(key)
                        continue
                    except Exception as exc:  # e.g. an unpicklable result
                        outcome = _Outcome(
                            ok=False,
                            error_type=type(exc).__name__,
                            message=str(exc),
                            transient=is_transient(exc),
                        )
                    complete(key, outcome)
            if broken:
                self._settle_collapse(
                    broken, trace_dir, procs, complete, requeue
                )
        finally:
            shutil.rmtree(trace_dir, ignore_errors=True)

    @staticmethod
    def _settle_collapse(
        broken_keys: List[str],
        trace_dir: str,
        procs: Dict[int, object],
        complete: Callable[[str, _Outcome], None],
        requeue: Callable[[str], None],
    ) -> None:
        """Charge only the collapse's true victim(s); free the innocents.

        One worker death breaks the whole shared pool, so every
        unfinished future raises ``BrokenProcessPool``.  The
        :func:`_traced_attempt` breadcrumbs separate three populations:

        - never started (no ``.start`` marker): queued behind the
          collapse -- innocent, re-pooled for free;
        - started and finished (``.done`` marker): the result was lost
          in the collapse but the process did not die -- innocent;
        - started, never finished: *candidate* victims.  A candidate is
          charged as ``worker_died`` only if its recorded worker pid
          exited abnormally (the pool's cleanup SIGTERMs the surviving
          workers, so exit codes ``0`` and ``-SIGTERM`` mark
          bystanders).  If no candidate's exit code is conclusive the
          whole candidate set is charged -- the conservative pre-fix
          behavior, never worse.
        """
        started_pid: Dict[str, int] = {}
        done: set = set()
        for key in broken_keys:
            start_path = os.path.join(trace_dir, key + ".start")
            if os.path.exists(start_path):
                try:
                    with open(start_path, encoding="utf-8") as f:
                        started_pid[key] = int(f.read().strip() or "0")
                except (OSError, ValueError):
                    started_pid[key] = 0
            if os.path.exists(os.path.join(trace_dir, key + ".done")):
                done.add(key)
        candidates = [
            key for key in broken_keys
            if key in started_pid and key not in done
        ]
        abnormal_pids = set()
        for pid, proc in procs.items():
            exitcode = getattr(proc, "exitcode", None)
            if exitcode is None:
                continue
            if exitcode != 0 and exitcode != -int(signal.SIGTERM):
                abnormal_pids.add(pid)
        victims = {
            key for key in candidates if started_pid.get(key) in abnormal_pids
        }
        if not victims:
            victims = set(candidates)
        trace_event(
            "sweep.pool_collapse",
            broken=len(broken_keys),
            victims=len(victims),
            requeued=len(broken_keys) - len(victims),
        )
        for key in broken_keys:
            if key in victims:
                complete(key, _WORKER_DIED)
            else:
                requeue(key)

    def _run_isolated(
        self, spec: RunSpec, timeout: Optional[float]
    ) -> _Outcome:
        """Re-run one worker-death suspect in a disposable one-task pool."""
        import multiprocessing

        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=1, mp_context=context) as pool:
            future = pool.submit(_attempt, spec, timeout)
            try:
                return future.result()
            except BrokenProcessPool:
                return _WORKER_DIED
            except Exception as exc:
                return _Outcome(
                    ok=False,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    transient=is_transient(exc),
                )
