"""Declarative descriptions of a single simulation run.

A :class:`RunSpec` captures everything that determines one simulation's
outcome: the system kind and its config, the graph, the workload and its
kwargs, the source, the placement, and the quantum quota.  Specs are
plain data so they can be pickled to worker processes and digested into
cache keys.

Graphs can be given two ways:

- an in-memory :class:`~repro.graph.csr.CSRGraph` (the parent builds it
  once and workers receive a pickled copy), or
- a :class:`GraphSpec` recipe -- cheaper to ship than the arrays.
  Recipes resolve through the content-addressed
  :class:`~repro.graph.store.GraphStore`: the first process to need a
  graph builds it once and publishes mmap-able CSR arrays; every other
  process (sweep workers, service jobs, later CLI invocations) maps the
  published artifact read-only with zero copies.  A small per-process
  LRU memo sits in front of the store so repeated resolves inside one
  process stay free without leaking one full graph per distinct spec.

Either way the cache key is computed from the *built* graph's arrays,
so a recipe and the graph it builds hit the same cache entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPlacement
from repro.obs.config import ObsConfig


@dataclass(frozen=True)
class GraphSpec:
    """A reproducible recipe for a graph.

    ``spec`` uses the CLI's specifier syntax (``rmat:14:16``,
    ``urand:100000:3000000``, ``suite:twitter``, or a file path -- see
    :func:`repro.cli.build_graph`).  ``scale`` applies to ``suite:``
    graphs only (the Table III stand-ins are scale-parameterized).
    """

    spec: str
    seed: int = 42
    scale: Optional[float] = None
    weighted: bool = False
    symmetrized: bool = False
    weight_seed: int = 7

    def build(self) -> CSRGraph:
        """Materialize the graph: memo, then artifact store, then build.

        With the store enabled (the default), the returned graph's
        arrays are read-only ``np.memmap`` views of the published
        artifact -- the kernel page cache shares the bytes across every
        process mapping the same recipe.  ``REPRO_GRAPH_STORE=0`` opts
        out and builds in process memory.
        """
        cached = _GRAPH_MEMO.get(self)
        if cached is not None:
            return cached
        from repro.graph import store as graph_store

        if graph_store.store_enabled():
            graph = graph_store.GraphStore().get_or_build(
                self, self.build_uncached
            )
        else:
            graph = self.build_uncached()
        _GRAPH_MEMO.put(self, graph)
        return graph

    def build_uncached(self) -> CSRGraph:
        """Materialize the graph in process memory, bypassing the store."""
        if self.spec.startswith("suite:"):
            from repro.graph import suites

            name = self.spec.partition(":")[2]
            if self.scale is not None:
                graph = suites.build_graph(
                    name, scale=self.scale, seed=self.seed
                )
            else:
                graph = suites.build_graph(name, seed=self.seed)
        else:
            if self.scale is not None:
                raise ConfigError(
                    "GraphSpec.scale only applies to suite: graphs"
                )
            from repro.cli import build_graph

            graph = build_graph(self.spec, seed=self.seed)
        if self.symmetrized:
            graph = graph.symmetrized()
        if self.weighted and not graph.has_weights:
            from repro.graph.generators import with_uniform_weights

            graph = with_uniform_weights(graph, seed=self.weight_seed)
        return graph


class _GraphMemo:
    """A small per-process LRU of built graphs.

    The memo used to be an unbounded dict, which leaked one full graph
    per distinct spec in long-lived service processes.  Store-backed
    graphs make eviction cheap (the next resolve re-maps the artifact
    without rebuilding), so the default capacity is deliberately small;
    ``REPRO_GRAPH_MEMO_SIZE`` tunes it, and ``0`` disables memoization
    entirely.
    """

    DEFAULT_CAPACITY = 8

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[GraphSpec, CSRGraph]" = OrderedDict()

    @property
    def capacity(self) -> int:
        if self._capacity is not None:
            return self._capacity
        from repro.runner.fault import env_int

        env = env_int("REPRO_GRAPH_MEMO_SIZE", minimum=0)
        return env if env is not None else self.DEFAULT_CAPACITY

    def get(self, spec: "GraphSpec") -> Optional[CSRGraph]:
        graph = self._entries.get(spec)
        if graph is not None:
            self._entries.move_to_end(spec)
        return graph

    def put(self, spec: "GraphSpec", graph: CSRGraph) -> None:
        capacity = self.capacity
        if capacity <= 0:
            return
        self._entries[spec] = graph
        self._entries.move_to_end(spec)
        while len(self._entries) > capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Per-process LRU memo of built graphs (GraphSpec is frozen/hashable).
_GRAPH_MEMO = _GraphMemo()

#: Workloads that take no source vertex.
SOURCELESS_WORKLOADS = ("cc", "pr")


def resolve_source(
    graph: CSRGraph, workload: str, source: Optional[int] = None
) -> Optional[int]:
    """The conventional default source: the highest-out-degree vertex.

    Every front end (``repro run``, ``repro submit``, the service
    scheduler) resolves an omitted source the same way so that the
    resulting specs share one cache key.  Sourceless workloads always
    map to ``None``.
    """
    if workload in SOURCELESS_WORKLOADS:
        return None
    if source is not None:
        return int(source)
    import numpy as np

    return int(np.argmax(graph.out_degrees()))


@dataclass
class RunSpec:
    """One independent simulation: system + config + graph + workload.

    ``config`` is the system's own config object (``NovaConfig``,
    ``PolyGraphConfig``, or ``LigraConfig``); ``None`` means the
    system's default.  ``placement`` (NOVA only) is a strategy name or
    a prebuilt :class:`VertexPlacement`.
    """

    workload: str
    graph: Union[GraphSpec, CSRGraph]
    config: Any = None
    system: str = "nova"
    source: Optional[int] = None
    placement: Union[str, VertexPlacement] = "random"
    placement_seed: int = 1
    max_quanta: int = 5_000_000
    workload_kwargs: Dict[str, Any] = field(default_factory=dict)
    #: Observability instrumentation for the run (NOVA only).  Part of
    #: the cache key: an instrumented run carries its timeline in the
    #: cached RunResult, so it must never alias an uninstrumented entry.
    obs: Optional[ObsConfig] = None
    #: Pre-computed graph version digest.  When set, the cache key uses
    #: it verbatim instead of digesting built arrays -- streaming
    #: session jobs key on the session's rolling version digest (base
    #: digest chained with every applied delta batch), so the graph is
    #: never materialized just to admit a job and two versions of one
    #: resident graph can never alias.
    graph_digest: Optional[str] = None

    def resolve_graph(self) -> CSRGraph:
        if isinstance(self.graph, GraphSpec):
            return self.graph.build()
        return self.graph

    def describe(self) -> str:
        """One-line human summary (failure records, CLI diagnostics)."""
        if isinstance(self.graph, GraphSpec):
            graph = self.graph.spec
        else:
            graph = (
                f"csr:v={self.graph.num_vertices}:e={self.graph.num_edges}"
            )
        source = "-" if self.source is None else str(self.source)
        placement = (
            self.placement
            if isinstance(self.placement, str)
            else f"prebuilt:{self.placement.strategy}"
        )
        return (
            f"{self.system}/{self.workload} graph={graph} source={source} "
            f"placement={placement}"
        )
