"""Resumable sweep checkpoints: a JSONL manifest of completed keys.

The run cache already makes completed work durable -- every result is
flushed to disk the moment its run finishes.  The checkpoint adds sweep
*identity* on top: a manifest file named by a digest of the sweep's
ordered key list, holding one JSON line per completed key.  An
interrupted sweep leaves its manifest behind; ``repro sweep --resume``
finds it, reports how much already finished, and the runner's
cache-first pass recomputes only the missing keys.  A sweep that
completes cleanly (no failures) removes its manifest.

The manifest is append-only and idempotent: marking an already-marked
key is a no-op, and each mark is a single short ``write`` append, so a
sweep killed mid-mark loses at most one line (that run's result is
still in the cache and costs one cache hit, never a recompute).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, Optional, Sequence, Set

#: Manifest format version.
CHECKPOINT_SCHEMA = 1


def sweep_id(keys: Sequence[str]) -> str:
    """Stable identity for a sweep: a digest of its sorted unique keys."""
    h = hashlib.sha256()
    for key in sorted(set(keys)):
        h.update(key.encode())
        h.update(b"\n")
    return h.hexdigest()


class SweepCheckpoint:
    """Append-only manifest of one sweep's completed keys."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._marked: Set[str] = set()
        self._loaded = False

    @classmethod
    def for_keys(cls, cache_root: str, keys: Sequence[str]) -> "SweepCheckpoint":
        """The checkpoint for a sweep identified by its key list."""
        ident = sweep_id(keys)
        path = os.path.join(cache_root, "sweeps", ident + ".jsonl")
        return cls(path)

    @property
    def sweep_id(self) -> str:
        return os.path.splitext(os.path.basename(self.path))[0]

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def completed_keys(self) -> Set[str]:
        """Keys marked complete by this or any previous invocation."""
        self._load()
        return set(self._marked)

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        try:
            with open(self.path, encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn final line from a hard kill
                    key = record.get("key")
                    if key:
                        self._marked.add(key)
        except OSError:
            pass

    def begin(self, total: int, meta: Optional[Dict[str, object]] = None) -> None:
        """Ensure the manifest exists, writing a header when fresh."""
        self._load()
        if self.exists():
            return
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        header = {"schema": CHECKPOINT_SCHEMA, "total": int(total)}
        if meta:
            header.update(meta)
        self._append(header)

    def mark(self, key: str) -> None:
        """Record one completed key (idempotent)."""
        self._load()
        if key in self._marked:
            return
        self._marked.add(key)
        if not self.exists():
            # A concurrent finish() or manual cleanup removed the
            # manifest: recreate rather than lose the mark.
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
        self._append({"key": key})

    def mark_many(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.mark(key)

    def _append(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(line)

    def finish(self) -> None:
        """Remove the manifest (the sweep completed with nothing left)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._marked.clear()
        self._loaded = True
