"""Content-addressed on-disk cache of completed simulation runs.

Every cache entry is one pickled :class:`~repro.core.metrics.RunResult`
stored under a SHA-256 key that digests everything determining the run's
outcome: the cache schema version, the package version (simulator
semantics can change between PRs), the system kind, the full config (as
a dataclass field dict), the graph's actual CSR arrays, the workload and
its kwargs, the source, the placement, and the quantum quota.  Any
change to any input yields a different key; stale entries are never
returned, only orphaned.

Layout: ``<root>/<key[:2]>/<key>.pkl`` -- two-level fan-out keeps
directories small on large sweeps.  Files are written to a temp name and
``os.replace``d, so concurrent writers (worker pools, parallel pytest)
can never expose a torn entry.  Each file carries a magic tag and a
payload digest; a corrupt or truncated entry fails verification, is
unlinked, and reads as a miss (the run is recomputed).

Eviction is explicit: :meth:`RunCache.prune` drops least-recently-used
entries past a byte budget (``REPRO_CACHE_MAX_BYTES`` wires it into
:class:`~repro.runner.sweep.SweepRunner`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Optional

from repro.core.metrics import RunResult
from repro.obs.counters import FAULT_COUNTERS
from repro.graph.csr import CSRGraph
from repro.graph.partition import VertexPlacement
from repro.runner.spec import GraphSpec, RunSpec

#: Bump when the digest recipe or entry format changes.
CACHE_SCHEMA = 2
_MAGIC = b"RNC1"


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-nova``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-nova")


#: Artifact identity -> digest memo for store-backed graphs.  Keyed by
#: the memmap file paths (content-addressed and immutable once
#: published), so an N-cell sweep over one store graph hashes the CSR
#: arrays once instead of N times.  Bounded LRU; in-memory graphs are
#: never memoized (nothing pins their bytes immutable).
_DIGEST_MEMO: "OrderedDict[tuple, str]" = OrderedDict()
_DIGEST_MEMO_CAPACITY = 64


def _backing_file(array) -> Optional[str]:
    """The mmap file behind an array, walking view chains, else None.

    :class:`CSRGraph` wraps the store's ``np.memmap`` arrays in
    ``ascontiguousarray`` views, so the ``.filename`` lives on a
    ``.base`` ancestor rather than the array itself.
    """
    seen = 0
    while array is not None and seen < 8:
        filename = getattr(array, "filename", None)
        if filename:
            return str(filename)
        array = getattr(array, "base", None)
        seen += 1
    return None


def _artifact_identity(graph: CSRGraph) -> Optional[tuple]:
    """A hashable identity for a store-backed (memmap) graph, else None.

    Store artifacts are read-only ``np.memmap`` arrays whose
    ``.filename`` points into the content-addressed store: same paths,
    same bytes.  Any array without a backing file (in-memory graphs,
    zero-length arrays loaded eagerly) disqualifies the graph from
    memoization -- correctness first, the memo is only an optimization.
    """
    arrays = [graph.row_ptr, graph.col_idx]
    if graph.has_weights:
        arrays.append(graph.weights)
    names = []
    for array in arrays:
        filename = _backing_file(array)
        if filename is None:
            return None
        names.append(filename)
    return (graph.num_vertices, graph.num_edges, tuple(names))


def graph_digest(graph: CSRGraph) -> str:
    """SHA-256 over the graph's CSR arrays (shape- and weight-aware).

    Store-backed graphs memoize the digest by artifact identity (the
    published files are immutable), so repeated digests of the same
    multi-GB artifact cost one dictionary lookup instead of re-reading
    and re-hashing the arrays.  The digest itself is byte-identical
    either way: memoized entries are computed by this same recipe on
    first sight.
    """
    identity = _artifact_identity(graph)
    if identity is not None:
        memoized = _DIGEST_MEMO.get(identity)
        if memoized is not None:
            _DIGEST_MEMO.move_to_end(identity)
            FAULT_COUNTERS.increment("cache.digest_memo_hits")
            return memoized
    h = hashlib.sha256()
    h.update(f"v={graph.num_vertices};e={graph.num_edges};".encode())
    h.update(graph.row_ptr.tobytes())
    h.update(graph.col_idx.tobytes())
    if graph.has_weights:
        h.update(graph.weights.tobytes())
    digest = h.hexdigest()
    if identity is not None:
        _DIGEST_MEMO[identity] = digest
        while len(_DIGEST_MEMO) > _DIGEST_MEMO_CAPACITY:
            _DIGEST_MEMO.popitem(last=False)
    return digest


#: Config object -> token memo.  ``dataclasses.asdict`` walks every
#: field recursively and dominates :func:`spec_key` on large grids that
#: share one config instance.  Only *frozen* dataclasses are memoized
#: (mutable configs could change between calls); entries hold a strong
#: reference to the config so its ``id()`` cannot be recycled.
_CONFIG_TOKEN_MEMO: "OrderedDict[int, tuple]" = OrderedDict()
_CONFIG_TOKEN_CAPACITY = 32


def _config_token(config) -> str:
    if config is None:
        return "default"
    if dataclasses.is_dataclass(config):
        frozen = type(config).__dataclass_params__.frozen
        if frozen:
            memoized = _CONFIG_TOKEN_MEMO.get(id(config))
            if memoized is not None and memoized[0] is config:
                _CONFIG_TOKEN_MEMO.move_to_end(id(config))
                return memoized[1]
        token = f"{type(config).__name__}:{dataclasses.asdict(config)!r}"
        if frozen:
            _CONFIG_TOKEN_MEMO[id(config)] = (config, token)
            while len(_CONFIG_TOKEN_MEMO) > _CONFIG_TOKEN_CAPACITY:
                _CONFIG_TOKEN_MEMO.popitem(last=False)
        return token
    return f"{type(config).__name__}:{config!r}"


def _placement_token(placement, placement_seed: int) -> str:
    if isinstance(placement, VertexPlacement):
        h = hashlib.sha256(placement.owner.tobytes())
        return f"placement:{placement.strategy}:{h.hexdigest()}"
    return f"strategy:{placement}:seed={placement_seed}"


def spec_key(spec: RunSpec) -> str:
    """The content-addressed cache key for one run spec.

    The graph contributes through its built arrays, so a
    :class:`GraphSpec` recipe and the :class:`CSRGraph` it produces map
    to the same entry.
    """
    import repro

    if getattr(spec, "graph_digest", None):
        # Streaming session specs carry their version digest: the graph
        # is resident at the service and must not be rebuilt to key.
        graph_part = str(spec.graph_digest)
    else:
        graph_part = graph_digest(spec.resolve_graph())
    kwargs = sorted(spec.workload_kwargs.items())
    parts = [
        f"schema={CACHE_SCHEMA}",
        f"version={repro.__version__}",
        f"system={spec.system}",
        f"workload={spec.workload}",
        f"kwargs={kwargs!r}",
        f"source={spec.source!r}",
        f"max_quanta={spec.max_quanta}",
        f"config={_config_token(spec.config)}",
        f"obs={_config_token(spec.obs)}",
        f"graph={graph_part}",
        f"{_placement_token(spec.placement, spec.placement_seed)}",
    ]
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class RunCache:
    """A directory of verified, atomically written run results."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def contains(self, key: str) -> bool:
        """Cheap existence probe: no read, no verification, no LRU touch.

        Fleet coordinators use this to check whether a worker's
        completed result has landed in the shared cache directory
        before paying for a full verified :meth:`load`.
        """
        return os.path.exists(self._path(key))

    def load(self, key: str) -> Optional[RunResult]:
        """Return the cached result, or ``None`` on miss or corruption.

        Corrupt entries (bad magic, digest mismatch, unpicklable
        payload) are unlinked so the recomputed result can replace them.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                blob = f.read()
        except OSError:
            return None
        try:
            magic, digest, payload = blob[:4], blob[4:36], blob[36:]
            if magic != _MAGIC or len(digest) != 32:
                raise ValueError("bad header")
            if hashlib.sha256(payload).digest() != digest:
                raise ValueError("payload digest mismatch")
            result = pickle.loads(payload)
            if not isinstance(result, RunResult):
                raise ValueError("unexpected payload type")
        except Exception:
            try:
                os.unlink(path)
            except OSError:
                pass
            return None
        try:
            os.utime(path)  # LRU touch for prune()
        except OSError:
            # A concurrent prune() unlinked the entry between the read
            # and the touch; the bytes are already in hand, so the
            # loaded result is still valid.
            pass
        return result

    def store(self, key: str, result: RunResult) -> str:
        """Atomically persist one result; returns the entry path."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(blob)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def entries(self):
        """Yield ``(path, size_bytes, mtime)`` for every cache entry."""
        for dirpath, _, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".pkl") or name.startswith(".tmp-"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue
                yield path, stat.st_size, stat.st_mtime

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def prune(self, max_bytes: int) -> int:
        """Drop least-recently-used entries until under ``max_bytes``.

        Returns the number of entries removed.
        """
        items = sorted(self.entries(), key=lambda item: item[2])
        total = sum(size for _, size, _ in items)
        removed = 0
        for path, size, _ in items:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed
