"""Process-parallel sweep execution with a content-addressed run cache.

The simulator's experiments (scaling curves, sensitivity sweeps,
multi-source harness runs) are embarrassingly parallel: every
(config, graph, workload, source) combination is an independent
simulation.  This subsystem runs such sweeps across a
:class:`concurrent.futures.ProcessPoolExecutor` worker pool and caches
each completed :class:`~repro.core.metrics.RunResult` on disk, keyed by
a digest of everything that determines the outcome -- so re-invoking a
benchmark suite recomputes nothing that already ran.

Environment knobs:

- ``REPRO_WORKERS``: worker-process count (default: ``os.cpu_count()``).
- ``REPRO_CACHE_DIR``: cache root (default ``~/.cache/repro-nova``).
- ``REPRO_CACHE_MAX_BYTES``: if set, prune least-recently-used entries
  past this size after each sweep.

Public entry points: :class:`~repro.runner.sweep.SweepRunner`,
:class:`~repro.runner.spec.RunSpec`, :class:`~repro.runner.spec.GraphSpec`.
"""

from repro.runner.spec import GraphSpec, RunSpec
from repro.runner.cache import RunCache, default_cache_dir, graph_digest, spec_key
from repro.runner.sweep import SweepRunner, SweepStats, execute_spec

__all__ = [
    "GraphSpec",
    "RunSpec",
    "RunCache",
    "SweepRunner",
    "SweepStats",
    "default_cache_dir",
    "execute_spec",
    "graph_digest",
    "spec_key",
]
