"""Process-parallel sweep execution with a content-addressed run cache.

The simulator's experiments (scaling curves, sensitivity sweeps,
multi-source harness runs) are embarrassingly parallel: every
(config, graph, workload, source) combination is an independent
simulation.  This subsystem runs such sweeps across a
:class:`concurrent.futures.ProcessPoolExecutor` worker pool and caches
each completed :class:`~repro.core.metrics.RunResult` on disk, keyed by
a digest of everything that determines the outcome -- so re-invoking a
benchmark suite recomputes nothing that already ran.

Execution is fault-tolerant: a spec that raises, exceeds its timeout,
or kills its worker yields a structured
:class:`~repro.runner.fault.RunFailure` while sibling runs complete and
store normally; transient failures retry with exponential backoff
(:class:`~repro.runner.fault.RetryPolicy`); and completed results flush
to the cache as they finish, so an interrupted sweep resumes with zero
recomputation (:class:`~repro.runner.checkpoint.SweepCheckpoint` +
``repro sweep --resume``).

Environment knobs:

- ``REPRO_WORKERS``: worker-process count (default: ``os.cpu_count()``).
- ``REPRO_SWEEP_BATCH``: truthy enables batched same-graph execution
  (cells sharing a graph dispatch as one worker task per round; see
  :mod:`repro.runner.batch`).
- ``REPRO_CACHE_DIR``: cache root (default ``~/.cache/repro-nova``).
- ``REPRO_CACHE_MAX_BYTES``: if set, prune least-recently-used entries
  past this size after each sweep.
- ``REPRO_RUN_TIMEOUT``: per-run wall-clock timeout in seconds
  (default: none).
- ``REPRO_RUN_RETRIES``: extra attempts granted to transient failures
  (default 1).
- ``REPRO_RETRY_BACKOFF``: base backoff seconds between retry rounds
  (default 0.25, doubling per round).
- ``REPRO_GRAPH_STORE`` / ``REPRO_GRAPH_STORE_DIR`` /
  ``REPRO_GRAPH_STORE_MAX_BYTES``: the content-addressed mmap graph
  artifact store GraphSpec recipes resolve through (see
  :mod:`repro.graph.store`).
- ``REPRO_GRAPH_MEMO_SIZE``: per-process built-graph LRU memo capacity
  (default 8; 0 disables memoization).

Public entry points: :class:`~repro.runner.sweep.SweepRunner`,
:class:`~repro.runner.spec.RunSpec`, :class:`~repro.runner.spec.GraphSpec`.
"""

from repro.runner.batch import group_cells
from repro.runner.cache import RunCache, default_cache_dir, graph_digest, spec_key
from repro.runner.checkpoint import SweepCheckpoint, sweep_id
from repro.runner.fault import RetryPolicy, RunFailure
from repro.runner.monitor import SweepMonitor
from repro.runner.spec import GraphSpec, RunSpec
from repro.runner.sweep import (
    SweepRunner,
    SweepStats,
    execute_spec,
    register_system,
)

__all__ = [
    "GraphSpec",
    "RetryPolicy",
    "RunCache",
    "RunFailure",
    "RunSpec",
    "SweepCheckpoint",
    "SweepMonitor",
    "SweepRunner",
    "SweepStats",
    "default_cache_dir",
    "execute_spec",
    "graph_digest",
    "group_cells",
    "register_system",
    "spec_key",
    "sweep_id",
]
