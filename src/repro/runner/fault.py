"""Failure records, retry policy, and environment validation for sweeps.

A sweep run can end three ways short of a result:

- the spec itself raises (``kind="error"``) -- deterministic, never
  retried;
- the run exceeds the policy's wall-clock timeout (``kind="timeout"``);
- the forked worker process dies mid-run -- an ``os._exit``, an OOM
  kill, a segfault in an extension (``kind="worker-died"``).

The last two, plus ``OSError`` / ``MemoryError`` (cache I/O hiccups,
transient allocation failures), are classified *transient* and retried
with exponential backoff up to :attr:`RetryPolicy.retries` extra
attempts.  Whatever remains becomes a :class:`RunFailure` -- a plain
data record the sweep returns (or wraps in
:class:`~repro.errors.SweepFailure`) instead of aborting sibling runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError, RunTimeoutError

#: Exception types worth retrying: they depend on machine state, not on
#: the spec.  Everything else (ConfigError, ValueError, ...) is
#: deterministic -- retrying would fail identically.
TRANSIENT_EXCEPTIONS = (MemoryError, OSError, RunTimeoutError)

#: RunFailure.kind values.
FAILURE_KINDS = ("error", "timeout", "worker-died")


def is_transient(exc: BaseException) -> bool:
    """True if ``exc`` could plausibly succeed on a retry."""
    return isinstance(exc, TRANSIENT_EXCEPTIONS)


def env_int(name: str, minimum: Optional[int] = None) -> Optional[int]:
    """Read an integer env var, or ``None`` when unset/empty.

    Raises :class:`ConfigError` naming the variable and the offending
    value instead of leaking a bare ``ValueError`` from ``int()``.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


def env_float(name: str, minimum: Optional[float] = None) -> Optional[float]:
    """Read a float env var with the same validation as :func:`env_int`."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value}")
    return value


@dataclass(frozen=True)
class RetryPolicy:
    """Per-run timeout and bounded exponential-backoff retry.

    ``timeout_seconds`` bounds one attempt's wall clock (``None``
    disables the watchdog); ``retries`` is the number of *extra*
    attempts granted to transient failures, so every key executes at
    most ``1 + retries`` times.  Retry round *n* sleeps
    ``backoff_seconds * backoff_factor**(n-1)`` capped at
    ``max_backoff_seconds``.
    """

    timeout_seconds: Optional[float] = None
    retries: int = 1
    backoff_seconds: float = 0.25
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise ConfigError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def allows_retry(self, attempts: int) -> bool:
        """True if a key that has run ``attempts`` times may run again."""
        return attempts < 1 + self.retries

    def backoff_delay(self, round_index: int) -> float:
        """Seconds to sleep before retry round ``round_index`` (1-based)."""
        if round_index <= 0:
            return 0.0
        delay = self.backoff_seconds * self.backoff_factor ** (round_index - 1)
        return min(self.max_backoff_seconds, delay)

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Build a policy from ``REPRO_RUN_TIMEOUT`` / ``REPRO_RUN_RETRIES``
        / ``REPRO_RETRY_BACKOFF``, validated, defaults where unset."""
        kwargs = {}
        timeout = env_float("REPRO_RUN_TIMEOUT")
        if timeout is not None:
            if timeout <= 0:
                raise ConfigError(
                    f"REPRO_RUN_TIMEOUT must be positive, got {timeout:g}"
                )
            kwargs["timeout_seconds"] = timeout
        retries = env_int("REPRO_RUN_RETRIES", minimum=0)
        if retries is not None:
            kwargs["retries"] = retries
        backoff = env_float("REPRO_RETRY_BACKOFF", minimum=0.0)
        if backoff is not None:
            kwargs["backoff_seconds"] = backoff
        return cls(**kwargs)


@dataclass
class RunFailure:
    """Structured record of one sweep run that ultimately failed.

    Occupies the failed spec's slot in the results list (when
    ``on_failure="return"``) so callers can align failures with their
    input order; also carried by :class:`~repro.errors.SweepFailure`.
    """

    key: str
    spec: object  # the RunSpec (typed loosely: records must stay picklable)
    kind: str  # one of FAILURE_KINDS
    error_type: str
    message: str
    attempts: int = 1
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        spec_text = ""
        describe = getattr(self.spec, "describe", None)
        if callable(describe):
            spec_text = f" [{describe()}]"
        return (
            f"{self.kind}{spec_text}: {self.error_type}: {self.message} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )

    def __str__(self) -> str:
        return self.describe()
