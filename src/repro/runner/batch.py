"""Batched same-graph sweep execution.

An N-cell sweep grid typically varies (workload, config, source) over a
handful of graphs, yet the unbatched executor pays per-*cell* fixed
costs: one pool task dispatch, one spec pickle, one result pickle, one
graph-memo resolve, and one system construction per cell.  With the
mmap graph artifact store already amortizing graph *builds* (PR 6),
those dispatch-side costs dominate short cells.

This module groups a round's cells by graph identity and dispatches
each group as **one** worker task: the worker resolves the shared graph
once (a single memo/store lookup), reuses one :class:`NovaSystem` per
(config, placement) within the group -- ``NovaSystem.run`` constructs a
fresh engine per call, so reuse is bit-identical to building a system
per cell -- and runs the group's cells back-to-back.  Every completed
cell is flushed to the :class:`~repro.runner.cache.RunCache`
*individually and immediately* by the worker, so checkpoint/resume/
monitor semantics are unchanged and a mid-batch crash loses at most the
cell that was executing:

- cells already flushed are recovered from the cache by the parent;
- the first unflushed cell (execution is in order) is charged as the
  ``worker_died`` suspect and re-run in isolation;
- the remaining cells re-queue without consuming retry budget.

Per-cell SIGALRM timeouts and structured :class:`_Outcome` error
flattening apply inside the batch exactly as they do unbatched: one
raising or timing-out cell fails alone while its batchmates complete.

Grouping is by graph *identity*, not digest: a :class:`GraphSpec`
recipe is a frozen dataclass (equal recipes resolve to the same store
artifact), and in-memory :class:`CSRGraph` objects group by ``id()``
(specs sharing one parent-built graph object batch together).  Large
groups are chunked so one huge group still spreads across the worker
pool.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple, Union

from repro.runner.cache import RunCache, _config_token
from repro.runner.spec import GraphSpec, RunSpec


def group_cells(
    items: List[Tuple[str, RunSpec]], workers: int
) -> List[List[Tuple[str, RunSpec]]]:
    """Group (key, spec) cells by graph identity, chunked for the pool.

    The chunk size targets at least ``workers`` tasks overall so a
    single same-graph grid still keeps every worker busy; cells keep
    their submission order inside each chunk (in-order execution is
    what makes mid-batch crash recovery precise).
    """
    grouped: Dict[object, List[Tuple[str, RunSpec]]] = {}
    for key, spec in items:
        gid: object
        if isinstance(spec.graph, GraphSpec):
            gid = spec.graph
        else:
            gid = id(spec.graph)
        grouped.setdefault(gid, []).append((key, spec))
    chunk = max(1, math.ceil(len(items) / max(1, workers)))
    out: List[List[Tuple[str, RunSpec]]] = []
    for cells in grouped.values():
        for start in range(0, len(cells), chunk):
            out.append(cells[start:start + chunk])
    return out


def _system_token(spec: RunSpec, graph) -> tuple:
    """Reuse key for one system inside a batch.

    Two cells share a system only when every system-construction input
    matches: system kind, config contents, graph object, and placement
    (a prebuilt placement by identity, a strategy by name + seed --
    placement construction is seeded and deterministic, so reuse is
    bit-identical).
    """
    if isinstance(spec.placement, str):
        placement: object = (spec.placement, spec.placement_seed)
    else:
        placement = id(spec.placement)
    return (spec.system, _config_token(spec.config), id(graph), placement)


def _group_execute(spec: RunSpec, systems: dict):
    """Execute one batch cell, reusing systems across the group.

    Only the stock nova executors are system-reused; registered
    overrides (test injections, plugins) and the baseline systems run
    through :func:`execute_spec` untouched -- they still amortize the
    graph resolve via the per-process memo.
    """
    from repro.runner import sweep as _sweep

    executor = _sweep._SYSTEM_EXECUTORS.get(spec.system)
    if executor is _sweep._run_nova or executor is _sweep._run_nova_jit:
        graph = spec.resolve_graph()
        token = _system_token(spec, graph)
        system = systems.get(token)
        if system is None:
            engine = "jit" if spec.system == "nova-jit" else "vectorized"
            system = _sweep._nova_system(spec, engine=engine)
            systems[token] = system
        return _sweep._nova_run(system, spec)
    return _sweep.execute_spec(spec)


def attempt_group(
    items: List[Tuple[str, RunSpec]],
    timeout: Optional[float],
    cache_root: Optional[str],
) -> List[Tuple[str, object]]:
    """Worker entry point: run a same-graph group back-to-back.

    Returns ``(key, _Outcome)`` pairs in submission order.  Each cell
    runs under its own SIGALRM watchdog and its own exception
    flattening, so one bad cell yields one failed outcome while the
    rest of the group completes.  Completed results are stored to the
    cache here, worker-side (``stored=True`` tells the parent to skip
    the redundant flush); a store failure leaves ``stored=False`` and
    the parent stores as usual.
    """
    from repro.runner.sweep import _attempt

    cache = RunCache(cache_root) if cache_root is not None else None
    systems: dict = {}
    outcomes: List[Tuple[str, object]] = []
    for key, spec in items:
        outcome = _attempt(
            spec, timeout, run=lambda s: _group_execute(s, systems)
        )
        if outcome.ok and cache is not None:
            try:
                cache.store(key, outcome.result)
                outcome.stored = True
            except OSError:
                pass  # parent-side flush will retry the store
        outcomes.append((key, outcome))
    return outcomes


def recover_group(
    group: List[Tuple[str, RunSpec]], cache: Optional[RunCache]
) -> List[Tuple[str, Union[object, str]]]:
    """Classify a group's cells after its worker died mid-batch.

    Cells whose results already landed in the cache (the worker flushes
    each cell as it completes) come back as successful outcomes; the
    first cell with no cached result is the one that was executing when
    the process died -- the ``worker_died`` suspect; every later
    unflushed cell returns the string ``"requeue"`` (innocent, re-run
    without charging retry budget).

    Without a cache there is no flush trail: the first cell is charged
    and the rest re-queue, which converges (each round isolates one
    more cell from the front) but re-runs lost work.
    """
    from repro.runner.sweep import _Outcome, _WORKER_DIED

    out: List[Tuple[str, Union[object, str]]] = []
    suspect_found = False
    for key, _spec in group:
        result = cache.load(key) if cache is not None else None
        if result is not None:
            out.append(
                (key, _Outcome(ok=True, result=result, stored=True))
            )
        elif not suspect_found:
            suspect_found = True
            out.append((key, _WORKER_DIED))
        else:
            out.append((key, "requeue"))
    return out
