"""Live sweep telemetry: per-key status, throughput, and ETA.

:class:`SweepMonitor` plugs into :meth:`SweepRunner.run
<repro.runner.sweep.SweepRunner.run>` and observes the sweep from the
parent process: every unique key moves through ``pending`` ->
``running`` -> ``hit`` / ``computed`` / ``failed`` (with ``retry``
bouncing a key back to ``pending``), and each transition updates a
throughput estimate and an ETA derived from completed-run wall-clock
durations (mean computed-run duration x remaining keys / workers --
cache hits are free, so only real executions feed the estimate).

Rendering is TTY-aware: on a terminal the progress line redraws in
place (carriage return); on a pipe it prints at most one full line per
``interval_seconds``; with ``stream=None`` nothing is written but the
status ledger and ``sweep.progress`` trace events still update, so the
monitor doubles as a programmatic progress API.  Resumed sweeps need no
special handling -- previously checkpointed runs resolve as cache hits,
which count toward ``done`` from the first render.

The clock is injectable (``clock=...``) so throttling and ETA are unit
testable without sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Optional, TextIO

from repro.obs.tracing import trace_event

#: Per-key lifecycle states.
PENDING = "pending"
RUNNING = "running"
HIT = "hit"
COMPUTED = "computed"
FAILED = "failed"

_STATES = (PENDING, RUNNING, HIT, COMPUTED, FAILED)
_DONE_STATES = (HIT, COMPUTED, FAILED)


def format_duration(seconds: float) -> str:
    """``90.5`` -> ``"1m30s"``; sub-minute values keep one decimal."""
    seconds = max(0.0, float(seconds))
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    hours, minutes = divmod(minutes, 60)
    if hours:
        return f"{hours}h{minutes:02d}m"
    return f"{minutes}m{secs:02d}s"


class SweepMonitor:
    """Track and render one sweep's per-key progress.

    Args:
        stream: where progress lines go (``sys.stderr`` in the CLI);
            ``None`` disables rendering but keeps state and tracing.
        interval_seconds: minimum spacing between rendered lines (and
            ``sweep.progress`` trace events).  The first and final
            updates always render.
        clock: monotonic-seconds callable, injectable for tests.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval_seconds: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval_seconds < 0:
            raise ValueError("interval_seconds must be non-negative")
        self.stream = stream
        self.interval_seconds = interval_seconds
        self._clock = clock if clock is not None else time.monotonic
        self.status: Dict[str, str] = {}
        self.retries: Dict[str, int] = {}
        self.workers = 1
        self._durations: list = []
        self._started_at: Optional[float] = None
        self._last_emit: Optional[float] = None
        self._line_len = 0
        isatty = getattr(stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False

    # ------------------------------------------------------------------
    # Runner-facing transitions
    # ------------------------------------------------------------------

    def begin(self, keys: Iterable[str], workers: int = 1) -> None:
        """Start tracking one sweep's unique keys."""
        self.status = {key: PENDING for key in keys}
        self.retries = {}
        self.workers = max(1, int(workers))
        self._durations = []
        self._started_at = self._clock()
        self._last_emit = None

    def hit(self, key: str) -> None:
        """One key resolved from the cache (including resumed runs)."""
        self.status[key] = HIT
        self._emit()

    def running(self, key: str) -> None:
        """One key was submitted for execution."""
        if self.status.get(key) == PENDING:
            self.status[key] = RUNNING
        self._emit()

    def retry(self, key: str) -> None:
        """One key failed transiently and is queued for another round."""
        self.retries[key] = self.retries.get(key, 0) + 1
        self.status[key] = PENDING
        self._emit()

    def requeue(self, key: str) -> None:
        """One key was bounced back to pending at no retry cost.

        Innocent siblings of a pool collapse (their process did not
        die, the shared pool did) re-queue without burning retry
        budget, so the monitor resets them to pending *without*
        counting a retry -- the retried tally must match the runner's
        budget accounting.
        """
        self.status[key] = PENDING
        self._emit()

    def finish(self, key: str, ok: bool, elapsed_seconds: float = 0.0) -> None:
        """One key settled for good (computed or permanently failed)."""
        self.status[key] = COMPUTED if ok else FAILED
        if ok and elapsed_seconds > 0:
            self._durations.append(float(elapsed_seconds))
        self._emit()

    def end(self) -> None:
        """Render the final state and release the terminal line."""
        self._emit(force=True)
        if self.stream is not None and self._tty and self._line_len:
            self.stream.write("\n")
            self.stream.flush()
            self._line_len = 0

    # ------------------------------------------------------------------
    # Derived telemetry
    # ------------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Key count per lifecycle state (every state always present)."""
        out = {state: 0 for state in _STATES}
        for state in self.status.values():
            out[state] += 1
        return out

    @property
    def total(self) -> int:
        return len(self.status)

    @property
    def done(self) -> int:
        """Settled keys: cache hits + computed + permanently failed."""
        counts = self.counts()
        return sum(counts[state] for state in _DONE_STATES)

    @property
    def retried(self) -> int:
        return sum(self.retries.values())

    def throughput(self) -> Optional[float]:
        """Settled keys per wall-clock second since :meth:`begin`."""
        if self._started_at is None:
            return None
        elapsed = self._clock() - self._started_at
        if elapsed <= 0 or self.done == 0:
            return None
        return self.done / elapsed

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate from computed-run durations.

        Cache hits resolve in microseconds and would wildly inflate a
        rate-based estimate on a resumed sweep, so the ETA uses only
        real execution durations: ``remaining x mean(duration) /
        workers``.  ``None`` until the first computed run lands.
        """
        counts = self.counts()
        remaining = counts[PENDING] + counts[RUNNING]
        if remaining == 0:
            return 0.0
        if not self._durations:
            return None
        mean = sum(self._durations) / len(self._durations)
        return remaining * mean / self.workers

    def progress_line(self) -> str:
        counts = self.counts()
        parts = [
            f"sweep {self.done}/{self.total}",
            f"{counts[HIT]} hit",
            f"{counts[COMPUTED]} computed",
        ]
        if counts[FAILED]:
            parts.append(f"{counts[FAILED]} failed")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if counts[RUNNING]:
            parts.append(f"{counts[RUNNING]} running")
        line = parts[0] + " (" + ", ".join(parts[1:]) + ")"
        rate = self.throughput()
        if rate is not None:
            line += f" | {rate:.1f} runs/s"
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            line += f" | eta {format_duration(eta)}"
        return line

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit(self, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_emit is not None
            and now - self._last_emit < self.interval_seconds
        ):
            return
        self._last_emit = now
        counts = self.counts()
        trace_event(
            "sweep.progress",
            total=self.total,
            done=self.done,
            hit=counts[HIT],
            computed=counts[COMPUTED],
            failed=counts[FAILED],
            running=counts[RUNNING],
            retried=self.retried,
            eta_seconds=self.eta_seconds(),
        )
        self._render()

    def _render(self) -> None:
        if self.stream is None:
            return
        line = self.progress_line()
        if self._tty:
            # Redraw in place, blank-padding any leftover characters.
            padded = line.ljust(self._line_len)
            self._line_len = len(line)
            self.stream.write("\r" + padded)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
