"""Shortest paths on a road network: the paper's hard case.

High-diameter graphs (RoadUSA in the paper, a synthetic grid here) have
sparse frontiers: few active vertices per wavefront step.  This stresses
exactly the structures NOVA's evaluation studies -- the tracker module
overfetches while hunting for scattered active blocks (Fig 10), and the
choice of vertex placement trades network traffic against load balance
(Fig 9b).

Run:  python examples/road_network_sssp.py
"""

import numpy as np

from repro import NovaSystem, scaled_config
from repro.graph.generators import road_grid, with_uniform_weights


def main() -> None:
    # A 200x200 road grid (~40k intersections) with travel-time weights.
    graph = with_uniform_weights(
        road_grid(200, 200, seed=3), low=1.0, high=10.0, seed=4
    )
    print(f"road network: {graph}")

    config = scaled_config(num_gpns=1, scale=1 / 256)
    source = 0  # the grid's corner: worst-case eccentricity

    print(f"\n{'placement':>14} {'time(us)':>9} {'GTEPS':>6} "
          f"{'waste%':>7} {'net KB':>8}")
    for placement in ("random", "load_balanced", "locality"):
        system = NovaSystem(config, graph, placement=placement)
        run = system.run("sssp", source=source, compute_reference=True)
        useful = run.traffic["hbm_useful_read_bytes"]
        waste = run.traffic["hbm_wasteful_read_bytes"]
        waste_share = waste / max(useful + waste, 1)
        print(
            f"{placement:>14} {run.elapsed_seconds * 1e6:>9.1f} "
            f"{run.gteps:>6.2f} {waste_share:>7.1%} "
            f"{run.traffic['network_bytes'] / 1e3:>8.1f}"
        )

    # The answers are identical regardless of placement -- spatial
    # mapping is a pure performance knob.
    base = NovaSystem(config, graph, placement="random").run(
        "sssp", source=source
    )
    far = int(np.nanargmax(np.where(np.isfinite(base.result),
                                    base.result, np.nan)))
    print(
        f"\nfarthest reachable intersection: {far} at travel time "
        f"{base.result[far]:.1f}"
    )
    print(
        "takeaway: sparse road frontiers make the prefetcher overfetch "
        "(the paper's Fig 10 waste), and locality placement trades "
        "network bytes for wavefront serialization."
    )


if __name__ == "__main__":
    main()
