"""Quickstart: build a graph, run BFS on a NOVA system, inspect results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NovaSystem, scaled_config
from repro.graph.generators import rmat
from repro.units import bytes_to_human


def main() -> None:
    # 1. Build an input graph: an R-MAT (Graph500-style) power-law graph
    #    with 65k vertices and ~1M edges.
    graph = rmat(scale=16, edge_factor=16, seed=1)
    print(f"graph: {graph}")

    # 2. Configure a NOVA system.  scaled_config() shrinks the paper's
    #    Table II capacities to match laptop-scale graphs while keeping
    #    bandwidths at paper values (see DESIGN.md section 6).
    config = scaled_config(num_gpns=2, scale=1 / 256)
    print(
        f"system: {config.num_gpns} GPNs x {config.pes_per_gpn} PEs, "
        f"cache {bytes_to_human(config.cache_bytes_per_pe)}/PE, "
        f"tracker superblock_dim={config.superblock_dim}"
    )

    # 3. Bind the system to the graph.  Vertices are spread over PEs with
    #    the paper's default random mapping (Section V).
    system = NovaSystem(config, graph, placement="random")

    # 4. Run BFS from the highest-degree vertex.  compute_reference=True
    #    also runs the sequential oracle and verifies the accelerator's
    #    answer bit-for-bit.
    source = int(np.argmax(graph.out_degrees()))
    run = system.run("bfs", source=source, compute_reference=True)

    # 5. Inspect the results.
    print(run.describe())
    print(f"  elapsed:          {run.elapsed_seconds * 1e6:.1f} us simulated")
    print(f"  throughput:       {run.gteps:.2f} GTEPS")
    print(f"  work efficiency:  {run.work_efficiency:.2f}")
    print(f"  coalescing:       {run.coalescing_rate:.1%} of updates absorbed")
    print(f"  HBM utilization:  {run.utilization['hbm']:.1%}")
    print(f"  DDR utilization:  {run.utilization['ddr']:.1%}")
    reached = int(np.isfinite(run.result).sum())
    print(f"  vertices reached: {reached:,} / {graph.num_vertices:,}")


if __name__ == "__main__":
    main()
