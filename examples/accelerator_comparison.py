"""Head-to-head: NOVA vs PolyGraph vs Ligra on a social-network graph.

Reproduces the paper's central comparison (Fig 4) at example scale: both
accelerators get the same off-chip bandwidth; PolyGraph holds vertices
on-chip via temporal slices while NOVA streams them from DRAM with the
vertex management unit.

Run:  python examples/accelerator_comparison.py
"""

import numpy as np

from repro import (
    LigraConfig,
    LigraModel,
    NovaSystem,
    PolyGraphConfig,
    PolyGraphSystem,
    scaled_config,
)
from repro.graph.generators import power_law
from repro.units import KiB


def main() -> None:
    # A Twitter-flavoured graph: heavy-tailed degrees, ~160k vertices.
    graph = power_law(160_000, avg_degree=35.0, exponent=1.9, seed=42)
    source = int(np.argmax(graph.out_degrees()))
    print(f"social graph: {graph}\n")

    scale = 1 / 256
    systems = {
        "NOVA": NovaSystem(
            scaled_config(num_gpns=1, scale=scale), graph, placement="random"
        ),
        "PolyGraph": PolyGraphSystem(
            PolyGraphConfig(onchip_bytes=128 * KiB), graph  # 32 MiB scaled
        ),
        "Ligra": LigraModel(LigraConfig(), graph),
    }

    print(f"{'system':>10} {'workload':>8} {'time(ms)':>9} {'GTEPS':>6} "
          f"{'msgs(M)':>8} {'coalesce':>9}")
    runs = {}
    for workload in ("bfs", "pr"):
        for name, system in systems.items():
            kwargs = {"max_supersteps": 5} if workload == "pr" else {}
            src = None if workload == "pr" else source
            run = system.run(workload, source=src, **kwargs)
            runs[(name, workload)] = run
            print(
                f"{name:>10} {workload:>8} {run.elapsed_seconds * 1e3:>9.3f} "
                f"{run.gteps:>6.2f} {run.messages_sent / 1e6:>8.2f} "
                f"{run.coalescing_rate:>9.1%}"
            )

    pg = runs[("PolyGraph", "bfs")]
    nova = runs[("NOVA", "bfs")]
    overhead = pg.breakdown["switching"] + pg.breakdown["inefficiency"]
    print(
        f"\nPolyGraph spends {overhead / pg.elapsed_seconds:.0%} of its time "
        f"on slice switching and re-processing ({pg.stats.get('slices')} "
        f"temporal slices)."
    )
    print(
        f"NOVA coalesces {nova.coalescing_rate:.0%} of updates in DRAM "
        f"(PolyGraph: {pg.coalescing_rate:.0%}) while using a fraction of "
        f"the on-chip memory."
    )
    print(
        "\nAt this (Twitter-like) size the paper expects PolyGraph to be "
        "modestly faster; grow the graph (see benchmarks/test_fig01) and "
        "the ranking flips."
    )


if __name__ == "__main__":
    main()
