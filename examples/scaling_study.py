"""Strong and weak scaling of a NOVA system (the paper's Fig 7 / Fig 8).

Strong scaling: a fixed graph across 1-8 GPNs -- time should drop nearly
linearly because vertex bandwidth, edge bandwidth, and functional units
all grow with the node count while the crossbar keeps up.

Weak scaling: double the graph with the machine -- time should stay flat.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro import NovaSystem, scaled_config
from repro.graph.generators import rmat


def main() -> None:
    print("strong scaling (fixed graph: RMAT-16, ~1M edges, BFS)")
    graph = rmat(16, 16, seed=7)
    source = int(np.argmax(graph.out_degrees()))
    base_time = None
    print(f"{'GPNs':>5} {'PEs':>4} {'time(us)':>9} {'speedup':>8} {'ideal':>6}")
    for gpns in (1, 2, 4, 8):
        config = scaled_config(num_gpns=gpns, scale=1 / 256)
        run = NovaSystem(config, graph, placement="random").run(
            "bfs", source=source
        )
        if base_time is None:
            base_time = run.elapsed_seconds
        print(
            f"{gpns:>5} {config.num_pes:>4} "
            f"{run.elapsed_seconds * 1e6:>9.1f} "
            f"{base_time / run.elapsed_seconds:>8.2f} {gpns:>6}"
        )

    print("\nweak scaling (graph doubles with the machine, BFS)")
    print(f"{'GPNs':>5} {'edges':>12} {'time(us)':>9} {'vs 1 GPN':>9}")
    base_time = None
    for scale, gpns in ((14, 1), (15, 2), (16, 4), (17, 8)):
        graph = rmat(scale, 16, seed=scale)
        source = int(np.argmax(graph.out_degrees()))
        config = scaled_config(num_gpns=gpns, scale=1 / 256)
        run = NovaSystem(config, graph, placement="random").run(
            "bfs", source=source
        )
        if base_time is None:
            base_time = run.elapsed_seconds
        print(
            f"{gpns:>5} {graph.num_edges:>12,} "
            f"{run.elapsed_seconds * 1e6:>9.1f} "
            f"{run.elapsed_seconds / base_time:>9.2f}"
        )
    print(
        "\ntakeaway: spatial partitioning scales where temporal "
        "partitioning cannot -- per-GPN throughput is preserved because "
        "each GPN brings its own vertex and edge bandwidth."
    )


if __name__ == "__main__":
    main()
