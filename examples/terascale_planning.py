"""Plan a terascale deployment and peek inside the pipeline.

Part 1 uses the analytical models (Eq 1-2, Table IV) to size NOVA,
PolyGraph, and Dalorex installations for graphs from Twitter-scale up to
WDC12 (128 B hyperlinks) -- the scaling argument of Section VI-E.

Part 2 turns on the per-quantum trace recorder and shows where a real
run's time goes (the Python-side equivalent of gem5's per-SimObject
stats).

Run:  python examples/terascale_planning.py
"""

import numpy as np

from repro import scaled_config
from repro.analysis.resources import (
    GraphScale,
    WDC12,
    terascale_requirements,
    tracker_requirements,
)
from repro.core.engine import NovaEngine
from repro.graph.generators import power_law
from repro.units import MiB, bytes_to_human
from repro.workloads import get_workload


def part1_resource_planning() -> None:
    print("=== terascale resource planning (Table IV) ===\n")
    targets = [
        GraphScale("Twitter", 41_650_000, 1_460_000_000),
        GraphScale("AliGraph", 492_900_000, 6_820_000_000),
        WDC12,
    ]
    for graph in targets:
        print(
            f"{graph.name}: {graph.num_vertices / 1e9:.2f} B vertices, "
            f"{graph.num_edges / 1e9:.0f} B edges "
            f"({bytes_to_human(graph.footprint_bytes)})"
        )
        for row in terascale_requirements(graph):
            print("   " + row.row())
        tracker = tracker_requirements(graph.vertex_capacity_bytes)
        print(
            f"   NOVA tracker metadata: {tracker / 8 / MiB:.1f} MiB total "
            f"(Eq 1-2)\n"
        )


def part2_pipeline_trace() -> None:
    print("=== inside one run: per-quantum trace ===\n")
    graph = power_law(100_000, avg_degree=20.0, seed=11)
    source = int(np.argmax(graph.out_degrees()))
    engine = NovaEngine(
        scaled_config(num_gpns=1, scale=1 / 256),
        graph,
        get_workload("bfs"),
        source=source,
        trace=True,
    )
    run = engine.run()
    print(run.describe())
    print(engine.trace.summary())
    # The busiest quantum, for flavour.
    busiest = max(engine.trace.samples, key=lambda s: s.messages_reduced)
    print(
        f"busiest quantum #{busiest.index}: reduced "
        f"{busiest.messages_reduced:,} messages, expanded "
        f"{busiest.edges_expanded:,} edges, inbox backlog "
        f"{busiest.inbox_backlog:,}, bottleneck={busiest.bottleneck}"
    )


if __name__ == "__main__":
    part1_resource_planning()
    part2_pipeline_trace()
